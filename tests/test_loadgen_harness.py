"""Unit tests for the load-harness machinery itself.

The concurrency stress suite (``test_loadgen_concurrency.py``) proves the
serving stack under the harness; this file pins down the harness's own
parts in isolation — the traffic gate's pause-and-drain protocol, the
equivalence auditor's sampling and verdicts, deterministic workload
streams, lock instrumentation, run configuration validation, and the
schema-versioned ``BENCH_loadgen.json`` envelope CI validates before
uploading.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.concurrency import RWLock, TimedRLock
from repro.exceptions import ServingError
from repro.loadgen import (
    SCHEMA_VERSION,
    EquivalenceAuditor,
    LoadConfig,
    LoadGenerator,
    LoadMix,
    TrafficGate,
    WorkerStream,
    bench_envelope,
    build_streams,
    instrument_server,
    load_and_validate,
    loadgen_payload,
    lock_report,
    validate_loadgen_payload,
    write_bench_json,
)
from repro.loadgen.workload import DELETE, INSERT, OP_KINDS, PID_STRIDE, READ
from repro.serving import ReplayConfig, ReplayDriver, TopKServer
from repro.workload.dblp import DblpConfig

DBLP = DblpConfig(n_papers=150, n_authors=60, n_venues=6, seed=11)
REPLAY = ReplayConfig(users=8, k=4, seed=31)

STREAM_SHAPE = dict(uids=[1, 2, 3], venues=["VLDB", "SIGMOD"],
                    lo=1990, hi=2015, max_aid=40, pid_base=10_000, seed=5)


@pytest.fixture()
def server():
    db = ReplayDriver(REPLAY).build_world(DBLP, backend="sqlite")
    instance = TopKServer(db, capacity=8)
    yield instance
    instance.close()
    db.close()


# -- traffic gate ------------------------------------------------------------


class TestTrafficGate:
    def test_requests_pass_and_are_counted(self):
        gate = TrafficGate()
        with gate.request():
            with gate.request():  # re-entrant across logical requests
                pass
        assert gate.stats()["requests_gated"] == 2
        assert gate.stats()["quiesces"] == 0

    def test_quiesce_waits_for_inflight_and_blocks_new_requests(self):
        gate = TrafficGate()
        inside = threading.Event()
        release = threading.Event()
        passed_during_quiesce = []

        def long_request():
            with gate.request():
                inside.set()
                release.wait(30)

        def late_request():
            inside.wait(30)
            time.sleep(0.05)  # give the quiescer time to raise the flag
            with gate.request():
                passed_during_quiesce.append(gate.stats()["quiesces"])

        worker = threading.Thread(target=long_request, daemon=True)
        late = threading.Thread(target=late_request, daemon=True)
        worker.start()
        late.start()
        inside.wait(30)

        quiesced = threading.Event()

        def quiesce():
            with gate.quiesce():
                quiesced.set()

        quiescer = threading.Thread(target=quiesce, daemon=True)
        quiescer.start()
        # The quiescer cannot finish while the long request is in flight.
        assert not quiesced.wait(0.15)
        release.set()
        assert quiesced.wait(30)
        for thread in (worker, late, quiescer):
            thread.join(30)
            assert not thread.is_alive()
        # The late request only got through after the quiesce completed.
        assert passed_during_quiesce == [1]
        assert gate.stats()["paused_seconds"] > 0.0


# -- auditor -----------------------------------------------------------------


class TestEquivalenceAuditor:
    def test_clean_on_a_consistent_server(self, server):
        uids = sorted(profile.uid for profile in server.db.read_profiles())
        for uid in uids[:4]:
            server.top_k(uid, REPLAY.k)
        auditor = EquivalenceAuditor(server, TrafficGate(), k=REPLAY.k)
        assert auditor.audit_once() > 0
        assert auditor.clean
        assert auditor.stats()["mismatches"] == 0

    def test_flags_a_corrupted_cached_answer(self, server):
        uids = sorted(profile.uid for profile in server.db.read_profiles())
        server.top_k(uids[0], REPLAY.k)
        entry = server.results.peek(uids[0], REPLAY.k)
        # Corrupt the materialised ranking behind the cache's back.
        object.__setattr__(entry, "ranking", ((999_999, 1.0),))
        auditor = EquivalenceAuditor(server, TrafficGate(), k=REPLAY.k)
        auditor.audit_once()
        assert not auditor.clean
        assert auditor.stats()["mismatches"] == 1
        assert auditor.mismatches[0]["uid"] == uids[0]

    def test_round_robin_covers_the_population(self, server):
        uids = sorted(profile.uid for profile in server.db.read_profiles())
        for uid in uids:
            server.top_k(uid, REPLAY.k)
        auditor = EquivalenceAuditor(server, TrafficGate(), k=REPLAY.k,
                                     sample=3)
        passes = 0
        while auditor.comparisons < len(uids) and passes < 10:
            auditor.audit_once()
            passes += 1
        assert auditor.comparisons >= len(uids)

    def test_start_stop_lifecycle(self, server):
        auditor = EquivalenceAuditor(server, TrafficGate(), k=REPLAY.k,
                                     interval=0.05)
        auditor.start()
        time.sleep(0.2)
        auditor.stop()
        assert not auditor.is_alive()
        assert auditor.audits >= 1
        assert auditor.clean

    def test_rejects_non_positive_interval(self, server):
        with pytest.raises(ValueError):
            EquivalenceAuditor(server, TrafficGate(), k=3, interval=0.0)


# -- workload streams --------------------------------------------------------


class TestWorkerStream:
    def test_streams_are_deterministic(self):
        mix = LoadMix()
        ops_a = [WorkerStream(0, mix, **STREAM_SHAPE).next_op()
                 for _ in range(50)]
        ops_b = [WorkerStream(0, mix, **STREAM_SHAPE).next_op()
                 for _ in range(50)]
        assert ops_a == ops_b

    def test_workers_own_disjoint_pid_namespaces(self):
        streams = build_streams(3, LoadMix(), **STREAM_SHAPE)
        pids = {}
        for stream in streams:
            mine = set()
            for _ in range(200):
                op = stream.next_op()
                if op.kind == INSERT:
                    mine.update(paper.pid for paper in op.papers)
                elif op.kind == DELETE:
                    # Deletes only ever name the worker's own inserts.
                    assert set(op.pids) <= mine
            base = STREAM_SHAPE["pid_base"] + stream.worker_id * PID_STRIDE
            assert all(base <= pid < base + PID_STRIDE for pid in mine)
            pids[stream.worker_id] = mine
        assert not (pids[0] & pids[1]) and not (pids[1] & pids[2])

    def test_zero_weight_removes_a_kind(self):
        mix = LoadMix(read_weight=1.0, update_weight=0.0, insert_weight=0.0,
                      delete_weight=0.0, data_update_weight=0.0)
        stream = WorkerStream(0, mix, **STREAM_SHAPE)
        assert {stream.next_op().kind for _ in range(100)} == {READ}

    def test_all_kinds_appear_in_the_default_mix(self):
        stream = WorkerStream(0, LoadMix(), **STREAM_SHAPE)
        kinds = {stream.next_op().kind for _ in range(600)}
        assert kinds == set(OP_KINDS)

    def test_empty_population_is_rejected(self):
        shape = dict(STREAM_SHAPE, uids=[])
        with pytest.raises(ServingError):
            WorkerStream(0, LoadMix(), **shape)


# -- lock instrumentation ----------------------------------------------------


class TestInstrumentation:
    def test_single_server_locks_are_swapped_and_reported(self, server):
        locks = instrument_server(server)
        names = {lock.stats()["name"] for lock in locks}
        assert {"server", "sessions", "count-cache", "result-cache"} <= names
        # The instrumented server still serves (and the condition variable
        # over the count cache still coalesces).
        uid = sorted(profile.uid for profile in server.db.read_profiles())[0]
        assert server.top_k(uid, REPLAY.k).ranking
        report = lock_report(locks)
        assert report[0]["wait_seconds"] >= report[-1]["wait_seconds"]
        assert any(record["acquisitions"] > 0 for record in report)

    def test_memory_backend_rwlock_is_included(self):
        db = ReplayDriver(REPLAY).build_world(DBLP, backend="memory")
        instance = TopKServer(db, capacity=8)
        try:
            locks = instrument_server(instance)
            assert any(isinstance(lock, RWLock) for lock in locks)
        finally:
            instance.close()
            db.close()

    def test_timed_rlock_counts_contention(self):
        lock = TimedRLock("probe")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                held.set()
                release.wait(30)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        held.wait(30)
        acquired = threading.Event()

        def contender():
            with lock:
                acquired.set()

        contender_thread = threading.Thread(target=contender, daemon=True)
        contender_thread.start()
        time.sleep(0.05)
        release.set()
        assert acquired.wait(30)
        thread.join(30)
        contender_thread.join(30)
        stats = lock.stats()
        assert stats["acquisitions"] == 2
        assert stats["contended"] == 1
        assert stats["wait_seconds"] > 0.0


# -- configuration validation ------------------------------------------------


class TestLoadConfig:
    def test_rejects_zero_threads(self):
        with pytest.raises(ServingError):
            LoadConfig(threads=0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ServingError):
            LoadConfig(duration_seconds=0.0)

    def test_rejects_non_positive_qps(self):
        with pytest.raises(ServingError):
            LoadConfig(target_qps=-5.0)

    def test_mix_rejects_all_zero_weights(self):
        with pytest.raises(ServingError):
            LoadMix(read_weight=0.0, update_weight=0.0, insert_weight=0.0,
                    delete_weight=0.0, data_update_weight=0.0).weights()


# -- report persistence and validation ---------------------------------------


def _minimal_run(**overrides):
    latency = {"count": 10, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0,
               "min_ms": 0.5, "mean_ms": 1.2, "max_ms": 4.0}
    run = {
        "mode": "closed", "backend": "sqlite", "shards": 1, "threads": 2,
        "processes": 1,
        "duration_seconds": 1.0, "ops": 10, "throughput_ops_per_sec": 10.0,
        "latency": dict(latency),
        "latency_by_kind": {"read": dict(latency)},
        "per_shard_requests": [10], "shard_skew": 1.0,
        "locks": [{"name": "server", "acquisitions": 1, "contended": 0,
                   "wait_seconds": 0.0, "hold_seconds": 0.1}],
        "audit": {"audits": 1, "comparisons": 2, "mismatches": 0,
                  "errors": []},
        "errors": [],
        "telemetry": {},
    }
    run.update(overrides)
    return run


class TestReportSchema:
    def test_envelope_carries_schema_version_and_sha(self, tmp_path):
        document = write_bench_json(str(tmp_path / "BENCH_loadgen.json"),
                                    "loadgen",
                                    loadgen_payload([_minimal_run()], {}))
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["bench"] == "loadgen"
        assert isinstance(document["git_sha"], str)
        on_disk = json.loads((tmp_path / "BENCH_loadgen.json").read_text())
        assert on_disk == document

    def test_load_and_validate_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_loadgen.json")
        write_bench_json(path, "loadgen",
                         loadgen_payload([_minimal_run()], {"threads": 2}))
        document = load_and_validate(path)
        assert len(document["payload"]["runs"]) == 1

    def test_envelope_helper_alone(self):
        document = bench_envelope("backends", {"arms": []})
        assert document["payload"] == {"arms": []}
        assert document["created_by"] == "repro"

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda run: run.pop("latency"), "missing 'latency'"),
        (lambda run: run["latency"].update(p50_ms=9.0), "not monotone"),
        (lambda run: run.update(per_shard_requests=[1, 2]),
         "per_shard_requests"),
        (lambda run: run.update(mode="sideways"), "mode"),
        (lambda run: run["audit"].pop("mismatches"), "audit"),
        (lambda run: run["locks"][0].pop("wait_seconds"), "locks"),
        (lambda run: run.pop("telemetry"), "missing 'telemetry'"),
        (lambda run: run.update(telemetry={"schema_version": 1}),
         "telemetry missing 'metrics'"),
    ])
    def test_validation_rejects_malformed_runs(self, mutate, fragment):
        run = _minimal_run()
        mutate(run)
        document = bench_envelope("loadgen", loadgen_payload([run], {}))
        with pytest.raises(ValueError, match="invalid loadgen report"):
            validate_loadgen_payload(document)

    def test_validation_rejects_wrong_bench_name(self):
        document = bench_envelope("backends",
                                  loadgen_payload([_minimal_run()], {}))
        with pytest.raises(ValueError, match="bench"):
            validate_loadgen_payload(document)

    def test_validation_rejects_empty_runs(self):
        document = bench_envelope("loadgen", loadgen_payload([], {}))
        with pytest.raises(ValueError, match="runs"):
            validate_loadgen_payload(document)


# -- end-to-end: the generator's report validates ----------------------------


def test_generator_report_passes_the_schema_validator(server):
    config = LoadConfig(threads=2, duration_seconds=0.4, seed=31,
                        mix=LoadMix(k=REPLAY.k), audit_interval=0.2)
    report = LoadGenerator(config).run(server)
    assert report.clean, (report.errors, report.audit)
    document = bench_envelope("loadgen",
                              loadgen_payload([report.as_dict()], {}))
    assert validate_loadgen_payload(document) == 1
