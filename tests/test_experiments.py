"""Tests for the experiment harness: context building and figure functions.

These are integration tests — every figure function must run end-to-end on
the tiny workload and produce output with the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures, reporting
from repro.experiments.context import SCALES, ExperimentContext


class TestContext:
    def test_focus_users_have_profiles(self, tiny_context):
        assert len(tiny_context.focus_users) == 2
        for uid in tiny_context.focus_users:
            assert len(tiny_context.profile(uid)) > 0
            assert tiny_context.preferences(uid)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext.create(scale="galactic")

    def test_scales_registry(self):
        assert {"tiny", "small", "default", "large"} <= set(SCALES)

    def test_preferences_ordered_and_positive(self, tiny_context):
        prefs = tiny_context.preferences(tiny_context.focus_users[0])
        intensities = [pref.intensity for pref in prefs]
        assert intensities == sorted(intensities, reverse=True)
        assert all(value > 0 for value in intensities)


class TestWorkloadExperiments:
    def test_table10(self, tiny_context):
        stats = figures.table10_statistics(tiny_context)
        assert stats["papers"] == tiny_context.total_papers()
        assert stats["quantitative_pref_rows"] > 0
        assert stats["qualitative_pref_rows"] > 0

    def test_table11(self, tiny_context):
        timings = figures.table11_insertion_time(tiny_context)
        assert timings["quantitative_preferences"] > 0
        assert timings["qualitative_preferences"] > 0
        assert timings["quantitative_seconds"] >= 0.0
        assert timings["qualitative_seconds"] >= 0.0

    def test_table12(self, tiny_context):
        table = figures.table12_default_values(tiny_context)
        assert set(table) == {"default", "min", "min_pos", "max", "max_pos", "avg", "avg_pos"}
        assert table["default"] == 0.5

    def test_fig13_insertion_series(self):
        series = figures.fig13_node_insertion(total_nodes=3000, batch_size=1000)
        assert len(series) == 3
        assert series[-1][0] == 3000
        assert all(elapsed >= 0.0 for _, elapsed in series)

    def test_fig17_distribution(self, tiny_context):
        histogram = figures.fig17_preference_distribution(tiny_context)
        assert histogram
        assert all(isinstance(k, int) and count > 0 for k, count in histogram.items())


class TestUtilityCoverageExperiments:
    def test_fig18_25(self, tiny_context):
        uid = tiny_context.focus_users[0]
        output = figures.fig18_25_utility_and_tuples(tiny_context, uid, sizes=(2, 5))
        assert set(output) == {2, 5}
        for rows in output.values():
            for row in rows:
                assert row["tuples"] >= 0
                assert 0.0 <= row["intensity"] <= 1.0
                assert row["utility"] >= 0.0

    def test_fig26_27_growth(self, tiny_context):
        uid = tiny_context.focus_users[0]
        growth = figures.fig26_27_preference_growth(tiny_context, uid)
        assert growth["graph_count"] > growth["original_count"]
        assert growth["growth_factor"] > 1.0
        assert len(growth["graph_intensities"]) == growth["graph_count"]

    def test_fig28_coverage_shape(self, tiny_context):
        """HYPRE must cover at least as much as the raw preference sets."""
        uid = tiny_context.focus_users[0]
        reports = {report.label: report for report in
                   figures.fig28_coverage(tiny_context, uid)}
        assert set(reports) == {"QT", "QL", "QT+QL", "HYPRE_Graph"}
        assert reports["HYPRE_Graph"].covered_tuples >= reports["QT"].covered_tuples
        assert reports["QT+QL"].covered_tuples >= reports["QT"].covered_tuples
        assert reports["HYPRE_Graph"].covered_tuples > 0


class TestAlgorithmExperiments:
    def test_fig29_31(self, tiny_context):
        uid = tiny_context.focus_users[0]
        series = figures.fig29_31_combine_two(tiny_context, uid, first_limit=2)
        assert any(name.endswith("_AND") for name in series)
        assert any(name.endswith("_AND_OR") for name in series)
        for rows in series.values():
            for row in rows:
                assert 0.0 <= row["intensity"] <= 1.0

    def test_fig32_34(self, tiny_context):
        uid = tiny_context.focus_users[0]
        result = figures.fig32_34_partially_combine_all(tiny_context, uid, sizes=(2, 5))
        assert result["total_combinations"] > 0
        assert set(result["by_size"]) == {2, 5}

    def test_fig35_36(self, tiny_context):
        uid = tiny_context.focus_users[0]
        rows = figures.fig35_36_bias_random(tiny_context, uid, repetitions=3, seed=1)
        assert len(rows) == 3
        # Random exploration wastes queries: invalid combinations dominate.
        assert all(row["invalid"] >= row["valid"] for row in rows)

    def test_fig37_38(self, tiny_context):
        uid = tiny_context.focus_users[0]
        result = figures.fig37_38_peps_vs_ta(tiny_context, uid)
        assert result["quantitative_similarity"] == 1.0
        assert result["quantitative_overlap"] == 1.0
        assert result["peps_tuples_above_threshold"] >= result["ta_tuples_above_threshold"]
        assert result["full_similarity"] == 1.0

    def test_fig39_40(self, tiny_context):
        uid = tiny_context.focus_users[0]
        rows = figures.fig39_40_peps_time(tiny_context, uid, k_values=(5, 20))
        assert [row["k"] for row in rows] == [5, 20]
        for row in rows:
            assert row["approximate_seconds"] > 0.0
            assert row["complete_seconds"] > 0.0

    def test_prop3_4(self):
        result = figures.prop3_4_counting(max_n=10, verify_up_to=5)
        assert len(result["growth"]) == 10
        for row in result["verification"]:
            assert row["and_only_formula"] == row["and_only_enumerated"]
            assert row["and_or_formula"] == row["and_or_enumerated"]

    def test_ablation_combination_functions(self, tiny_context):
        uid = tiny_context.focus_users[0]
        result = figures.ablation_combination_functions(tiny_context, uid, k=10)
        for key in ("reserved_similarity", "dominant_similarity"):
            assert 0.0 <= result[key] <= 1.0

    def test_ablation_default_strategies(self, tiny_context):
        uid = tiny_context.focus_users[0]
        result = figures.ablation_default_strategies(tiny_context, uid)
        assert "avg_pos" in result
        for row in result.values():
            assert row["preferences"] > 0
            assert 0.0 <= row["coverage_fraction"] <= 1.0


class TestReporting:
    def test_format_table(self):
        rows = [{"k": 10, "seconds": 0.5}, {"k": 100, "seconds": 1.25}]
        text = reporting.format_table(rows)
        assert "k" in text and "seconds" in text
        assert "0.5000" in text

    def test_format_table_empty(self):
        assert reporting.format_table([]) == "(no rows)"

    def test_format_mapping(self):
        text = reporting.format_mapping({"papers": 300, "ratio": 0.25}, title="Stats")
        assert "Stats" in text
        assert "papers" in text
        assert "0.2500" in text

    def test_format_series_truncation(self):
        text = reporting.format_series(list(range(50)), name="xs", max_items=5)
        assert "xs:" in text
        assert "50 values total" in text

    def test_print_report(self, capsys):
        reporting.print_report("Title", "body")
        captured = capsys.readouterr().out
        assert "Title" in captured and "body" in captured
