"""Tests for the incremental pairwise-combination index and its invalidation.

The invalidation contract under test (see ``docs/ARCHITECTURE.md``):

* inserting a preference node dirties exactly the pairs joining the new
  predicate with every existing preference — nothing more, nothing less;
* merging duplicate quantitative preferences or recomputing an intensity
  never re-issues a count (counts depend only on predicates and data);
* a qualitative edge insertion by itself dirties nothing;
* after any mutation sequence, a refresh produces exactly the pair table a
  full rebuild would produce, while issuing strictly fewer count queries
  after a single node insertion.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hypre import HypreGraphBuilder
from repro.core.hypre.events import (
    EDGE_INSERTED,
    INTENSITY_CHANGED,
    NODE_INSERTED,
    NODES_MERGED,
    GraphMutation,
)
from repro.core.preference import QuantitativePreference, QualitativePreference
from repro.index import (
    CountCache,
    IncrementalPairIndex,
    PairwiseCombinationIndex,
    SelectivityEstimator,
    estimate_selectivity,
    pair_provably_empty,
)
from repro.algorithms.base import make_preferences, preferences_from_graph
from repro.algorithms.peps import PEPSAlgorithm
from repro.core.predicate import parse_predicate

UID = 1

#: A pool of predicates over the tiny workload: a mix of venue equalities
#: (pairwise incompatible among themselves) and year ranges.
POOL = [
    ("dblp.venue = 'VLDB'", 0.9),
    ("dblp.venue = 'SIGMOD'", 0.8),
    ("dblp.year >= 2005", 0.7),
    ("dblp.year >= 2000 AND dblp.year <= 2010", 0.6),
    ("dblp.venue = 'CIKM'", 0.5),
    ("dblp.year < 2005", 0.4),
    ("dblp.venue = 'ICDE'", 0.35),
    ("dblp.year >= 2010", 0.3),
]


def build_graph(entries):
    """A HYPRE graph holding ``entries`` as user 1's quantitative profile."""
    builder = HypreGraphBuilder()
    for sql, intensity in entries:
        builder.add_quantitative(QuantitativePreference(UID, sql, intensity))
    return builder


def attached_index(db, builder):
    """An incremental index attached to the builder's graph for user 1."""
    cache = CountCache(db)
    index = IncrementalPairIndex(cache)
    index.attach(builder.hypre, UID)
    return cache, index


def pair_table(index):
    """The index content as a comparable predicate-keyed mapping."""
    if getattr(index, "stale", False):
        index.refresh()
    table = {}
    for i in range(len(index.preferences)):
        for j in range(i + 1, len(index.preferences)):
            record = index.pair(i, j)
            key = frozenset((index.preferences[i].sql, index.preferences[j].sql))
            table[key] = (record.tuple_count, round(record.intensity, 12))
    return table


class TestDirtyTracking:
    def test_initial_attach_builds_clean_index(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        assert not index.stale
        assert index.dirty_predicates() == frozenset()
        assert len(index) == 6  # C(4, 2)

    def test_node_insert_dirties_exactly_new_pairs(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        new_sql, new_intensity = POOL[4]
        builder.add_quantitative(QuantitativePreference(UID, new_sql, new_intensity))
        assert index.stale
        new_key = parse_predicate(new_sql).to_sql()
        assert index.dirty_predicates() == frozenset({new_key})
        expected = {frozenset((new_key, parse_predicate(sql).to_sql()))
                    for sql, _ in POOL[:4]}
        assert index.dirty_pairs() == expected

    def test_merge_dirties_only_merged_predicate(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        sql, _ = POOL[0]
        builder.add_quantitative(QuantitativePreference(UID, sql, 0.5))
        key = parse_predicate(sql).to_sql()
        assert index.dirty_predicates() == frozenset({key})

    def test_plain_edge_insert_dirties_nothing(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        hypre = builder.hypre
        # Endpoint intensities (0.9 > 0.8) already satisfy the edge
        # direction, so no intensity is recomputed: the edge itself must not
        # dirty any pair.
        left = hypre.find_node_id(UID, POOL[0][0])
        right = hypre.find_node_id(UID, POOL[1][0])
        hypre.add_prefers_edge(left, right, 0.1)
        assert index.dirty_predicates() == frozenset()
        assert not index.stale

    def test_other_users_mutations_are_ignored(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        builder.add_quantitative(QuantitativePreference(99, POOL[5][0], 0.4))
        assert not index.stale
        assert index.dirty_predicates() == frozenset()

    def test_detach_stops_tracking(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        index.detach()
        builder.add_quantitative(QuantitativePreference(UID, POOL[4][0], 0.5))
        assert not index.stale

    def test_cycle_and_discard_edges_emit_events_but_dirty_nothing(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        hypre = builder.hypre
        received = []
        hypre.subscribe(received.append)
        left = hypre.find_node_id(UID, POOL[0][0])
        right = hypre.find_node_id(UID, POOL[1][0])
        hypre.add_cycle_edge(left, right, 0.2)
        hypre.add_discard_edge(left, right, 0.2)
        kinds = [(event.kind, event.edge_type) for event in received]
        assert (EDGE_INSERTED, "CYCLE") in kinds
        assert (EDGE_INSERTED, "DISCARD") in kinds
        assert index.dirty_predicates() == frozenset()


class TestIncrementalRefresh:
    def test_insert_issues_strictly_fewer_counts_than_rebuild(self, tiny_db):
        builder = build_graph(POOL[:6])
        _, index = attached_index(tiny_db, builder)
        builder.add_quantitative(
            QuantitativePreference(UID, POOL[6][0], POOL[6][1]))
        index.refresh()
        incremental_counts = index.last_refresh_pair_counts

        rebuild_cache = CountCache(tiny_db)
        rebuild = PairwiseCombinationIndex(
            rebuild_cache, preferences_from_graph(builder.hypre, UID))
        full_counts = rebuild.pairs_counted

        # The incremental path counted at most the pairs involving the new
        # predicate; the rebuild counted every compatible pair.
        assert incremental_counts < full_counts
        assert incremental_counts <= len(POOL[:6])

    def test_incremental_equals_full_rebuild_after_insert(self, tiny_db):
        builder = build_graph(POOL[:5])
        _, index = attached_index(tiny_db, builder)
        builder.add_quantitative(
            QuantitativePreference(UID, POOL[5][0], POOL[5][1]))
        rebuild = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences_from_graph(builder.hypre, UID))
        assert pair_table(index) == pair_table(rebuild)

    def test_merge_refresh_issues_no_counts(self, tiny_db):
        builder = build_graph(POOL[:5])
        cache, index = attached_index(tiny_db, builder)
        misses_before = cache.misses
        builder.add_quantitative(QuantitativePreference(UID, POOL[0][0], 0.3))
        index.refresh()
        assert cache.misses == misses_before
        assert index.last_refresh_pair_counts == 0
        # The merged intensity ((0.9 + 0.3) / 2) is reflected in the rows.
        rebuild = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences_from_graph(builder.hypre, UID))
        assert pair_table(index) == pair_table(rebuild)

    def test_intensity_recompute_issues_no_counts(self, tiny_db):
        builder = build_graph(POOL[:5])
        cache, index = attached_index(tiny_db, builder)
        misses_before = cache.misses
        # A qualitative preference between two existing nodes whose current
        # intensities contradict the edge direction forces a recompute.
        builder.add_qualitative(
            QualitativePreference(UID, POOL[4][0], POOL[0][0], 0.2))
        index.refresh()
        assert cache.misses == misses_before
        rebuild = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences_from_graph(builder.hypre, UID))
        assert pair_table(index) == pair_table(rebuild)

    def test_qualitative_insert_with_new_nodes_counts_only_new_pairs(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        # Both endpoints are new nodes: two predicates join the profile.
        builder.add_qualitative(
            QualitativePreference(UID, POOL[6][0], POOL[7][0], 0.3))
        index.refresh()
        rebuild = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences_from_graph(builder.hypre, UID))
        assert pair_table(index) == pair_table(rebuild)
        assert index.last_refresh_pair_counts < rebuild.pairs_counted

    def test_reads_serve_stable_snapshot_until_refresh(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        builder.add_quantitative(
            QuantitativePreference(UID, POOL[4][0], POOL[4][1]))
        assert index.stale
        # Reads keep serving the pre-mutation snapshot: a consumer holding
        # the old positional preference list must not have the index shift
        # underneath it mid-run.
        assert len(index) == 6  # still C(4, 2)
        assert len(index.preferences) == 4
        # Only an explicit refresh folds the mutation in.
        index.refresh()
        assert not index.stale
        assert len(index) == 10  # C(5, 2)


class TestRelationUpdateInvalidation:
    def test_invalidate_counts_forces_full_recount(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        counted = index.pairs_counted
        index.invalidate_counts()
        assert index.stale
        index.refresh()
        # Every compatible pair was re-counted from scratch.
        assert index.pairs_counted == 2 * counted

    def test_invalidate_attribute_recounts_only_matching_pairs(self, tiny_db):
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        dropped = index.invalidate_attribute("dblp.year")
        assert dropped > 0
        assert index.stale
        before = index.pairs_counted
        index.refresh()
        recounted = index.pairs_counted - before
        # Only the dropped pairs came back (minus any prefilter-provable
        # ones), and venue-only pairs were untouched.
        assert 0 < recounted <= dropped

    def test_invalidate_attribute_normalises_qualified_names(self, tiny_db):
        """Bare "year" must drop the same pair counts as "dblp.year" — the
        predicates are written qualified, and a spelling mismatch would
        silently spare stale counts."""
        builder = build_graph(POOL[:4])
        _, index = attached_index(tiny_db, builder)
        qualified = index.invalidate_attribute("dblp.year")
        index.refresh()
        bare = index.invalidate_attribute("year")
        assert bare == qualified > 0

    def test_relation_update_reflected_after_invalidation(self, tiny_dataset):
        """End to end: new rows land in dblp -> invalidate -> counts change."""
        from repro.sqldb.database import Database
        from repro.workload.loader import load_dataset

        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            builder = build_graph([POOL[0], POOL[2]])  # VLDB x year>=2005
            cache, index = attached_index(db, builder)
            stale_count = index.pair(0, 1).tuple_count
            db.execute("INSERT INTO dblp (pid, title, venue, year) "
                       "VALUES (99001, 'new paper', 'VLDB', 2011)")
            db.execute("INSERT INTO dblp_author (pid, aid) VALUES (99001, 1)")
            db.commit()
            cache.clear()
            index.invalidate_counts()
            index.refresh()
            assert index.pair(0, 1).tuple_count == stale_count + 1


class TestPepsIntegration:
    def test_for_graph_user_tracks_mutations(self, tiny_db):
        builder = build_graph(POOL[:5])
        from repro.algorithms.base import PreferenceQueryRunner

        runner = PreferenceQueryRunner(tiny_db)
        peps = PEPSAlgorithm.for_graph_user(runner, builder.hypre, UID)
        before = peps.top_k(5)

        builder.add_quantitative(
            QuantitativePreference(UID, POOL[5][0], POOL[5][1]))
        updated = PEPSAlgorithm.for_graph_user(
            runner, builder.hypre, UID, pair_index=peps.pair_index)

        fresh_runner = PreferenceQueryRunner(tiny_db)
        oracle = PEPSAlgorithm(fresh_runner,
                               preferences_from_graph(builder.hypre, UID))
        assert updated.top_k(5) == oracle.top_k(5)
        assert before  # the pre-mutation ranking remains a valid list

    def test_mutation_mid_run_does_not_desync_live_peps(self, tiny_db):
        """Regression: a mutation landing while a PEPS instance is live must
        not shift the index's positional view under that instance."""
        builder = build_graph(POOL[:5])
        from repro.algorithms.base import PreferenceQueryRunner

        runner = PreferenceQueryRunner(tiny_db)
        peps = PEPSAlgorithm.for_graph_user(runner, builder.hypre, UID)
        snapshot = peps.top_k(5)
        builder.add_quantitative(
            QuantitativePreference(UID, POOL[5][0], POOL[5][1]))
        # The live instance keeps answering from its captured snapshot
        # (previously this raised IndexError / returned wrong pairs).
        assert peps.top_k(5) == snapshot
        assert len(peps.pair_index.preferences) == len(peps.preferences)

    def test_incremental_index_reused_across_instances(self, tiny_db):
        builder = build_graph(POOL[:5])
        from repro.algorithms.base import PreferenceQueryRunner

        runner = PreferenceQueryRunner(tiny_db)
        peps = PEPSAlgorithm.for_graph_user(runner, builder.hypre, UID)
        counted = peps.pair_index.pairs_counted
        again = PEPSAlgorithm.for_graph_user(runner, builder.hypre, UID,
                                             pair_index=peps.pair_index)
        assert again.pair_index is peps.pair_index
        assert peps.pair_index.pairs_counted == counted


class TestSelectivity:
    def test_incompatible_pair_is_provably_empty(self):
        first = parse_predicate("dblp.venue = 'VLDB'")
        second = parse_predicate("dblp.venue = 'SIGMOD'")
        assert pair_provably_empty(first, second)
        assert SelectivityEstimator().pair_estimate(first, second) == 0.0

    def test_compatible_pair_never_estimates_zero(self):
        first = parse_predicate("dblp.venue = 'VLDB'")
        second = parse_predicate("dblp.year >= 2005")
        estimate = SelectivityEstimator().pair_estimate(first, second)
        assert estimate > 0.0

    def test_cached_zero_count_proves_emptiness(self, tiny_db):
        cache = CountCache(tiny_db)
        empty = parse_predicate("dblp.venue = 'NO_SUCH_VENUE'")
        other = parse_predicate("dblp.year >= 2005")
        estimator = SelectivityEstimator(cache)
        assert not estimator.proves_empty(empty, other)  # not yet known
        cache.count(empty)  # caches 0
        assert estimator.proves_empty(empty, other)

    def test_estimates_are_clamped_to_unit_interval(self):
        wide = parse_predicate(
            "dblp.venue = 'A' OR dblp.venue = 'B' OR dblp.year >= 0 OR dblp.year <= 9999")
        narrow = parse_predicate(
            "dblp.venue = 'A' AND dblp.year >= 2000 AND dblp.year <= 2001 "
            "AND dblp.title = 'x' AND dblp_author.aid = 1")
        for predicate in (wide, narrow):
            assert 0.0 < estimate_selectivity(predicate) <= 1.0

    def test_counter_as_cache_enables_cached_zero_prefilter(self, tiny_db):
        """Regression: a bare CountCache counter must back the estimator."""
        cache = CountCache(tiny_db)
        cache.count(parse_predicate("dblp.venue = 'NO_SUCH_VENUE'"))  # 0
        preferences = make_preferences([
            ("dblp.venue = 'NO_SUCH_VENUE'", 0.9),
            ("dblp.year >= 2005", 0.7),
        ])
        index = PairwiseCombinationIndex(cache, preferences)
        assert index.pairs_prefiltered == 1
        assert index.pairs_counted == 0

    def test_prefilter_never_changes_results(self, tiny_db):
        preferences = make_preferences(POOL)
        cache = CountCache(tiny_db)
        filtered = PairwiseCombinationIndex(cache, preferences)
        unfiltered = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences,
            estimator=SelectivityEstimator())  # no cached-zero sharpening
        assert pair_table(filtered) == pair_table(unfiltered)
        assert filtered.pairs_prefiltered > 0


# -- property: incremental maintenance == full rebuild -----------------------

@st.composite
def insertion_sequences(draw):
    """An initial profile plus a mutation sequence over the predicate pool."""
    initial = draw(st.integers(min_value=1, max_value=4))
    mutations = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(POOL) - 1),
                  st.floats(min_value=0.05, max_value=1.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=6))
    return initial, mutations


class TestEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(insertion_sequences())
    def test_incremental_equals_rebuild(self, tiny_db, sequence):
        initial, mutations = sequence
        builder = build_graph(POOL[:initial])
        _, index = attached_index(tiny_db, builder)
        for pool_position, intensity in mutations:
            sql = POOL[pool_position][0]
            builder.add_quantitative(
                QuantitativePreference(UID, sql, intensity))
        index.refresh()
        rebuild = PairwiseCombinationIndex(
            CountCache(tiny_db), preferences_from_graph(builder.hypre, UID))
        assert pair_table(index) == pair_table(rebuild)
