"""Tests for Combine-Two, Partially-Combine-All and Bias-Random-Selection."""

from __future__ import annotations

import random

import pytest

from repro.algorithms.base import PreferenceQueryRunner, make_preferences
from repro.algorithms.bias_random import BiasRandomSelectionAlgorithm, bias_random_selection
from repro.algorithms.combine_two import (
    AND_OR_SEMANTICS,
    AND_SEMANTICS,
    CombineTwoAlgorithm,
    combine_two,
)
from repro.algorithms.partial import PartiallyCombineAllAlgorithm, partially_combine_all
from repro.core.intensity import f_and, f_or
from repro.exceptions import EmptyPreferenceListError


@pytest.fixture(scope="module")
def workload(tiny_db):
    """A small, deterministic preference list mixing venue and author predicates."""
    venues = [row["venue"] for row in
              tiny_db.query("SELECT venue, COUNT(*) AS n FROM dblp GROUP BY venue"
                            " ORDER BY n DESC LIMIT 3")]
    authors = [row["aid"] for row in
               tiny_db.query("SELECT aid, COUNT(*) AS n FROM dblp_author GROUP BY aid"
                             " ORDER BY n DESC LIMIT 3")]
    preferences = make_preferences([
        (f"dblp.venue = '{venues[0]}'", 0.9),
        (f"dblp.venue = '{venues[1]}'", 0.6),
        (f"dblp_author.aid = {authors[0]}", 0.5),
        (f"dblp_author.aid = {authors[1]}", 0.35),
        (f"dblp.venue = '{venues[2]}'", 0.3),
        (f"dblp_author.aid = {authors[2]}", 0.2),
    ])
    runner = PreferenceQueryRunner(tiny_db)
    return runner, preferences


class TestCombineTwo:
    def test_pair_count_and_semantics(self, workload):
        runner, preferences = workload
        records = combine_two(runner, preferences, semantics=AND_SEMANTICS)
        n = len(preferences)
        assert len(records) == n * (n - 1) // 2
        assert all(record.size == 2 for record in records)

    def test_same_attribute_pairs_use_or_in_mixed_semantics(self, workload):
        runner, preferences = workload
        algorithm = CombineTwoAlgorithm(runner, semantics=AND_OR_SEMANTICS)
        records = algorithm.run(preferences)
        or_records = [record for record in records if " OR " in record.predicate.to_sql()]
        and_records = [record for record in records if " AND " in record.predicate.to_sql()]
        assert or_records and and_records
        # Same-venue OR pairs are always applicable.
        assert all(record.is_applicable for record in or_records)

    def test_and_semantics_can_be_inapplicable(self, workload):
        """Two different venues AND-ed never return tuples (paper's key point)."""
        runner, preferences = workload
        records = combine_two(runner, preferences, semantics=AND_SEMANTICS)
        venue_pairs = [record for record in records
                       if record.predicate.to_sql().count("dblp.venue") == 2]
        assert venue_pairs
        assert all(record.tuple_count == 0 for record in venue_pairs)

    def test_intensity_values_match_functions(self, workload):
        runner, preferences = workload
        algorithm = CombineTwoAlgorithm(runner, semantics=AND_OR_SEMANTICS)
        records = algorithm.run_for_first(preferences, 0)
        assert len(records) == len(preferences) - 1
        for record, other in zip(records, preferences[1:]):
            first = preferences[0]
            if first.attributes == other.attributes:
                expected = f_or(first.intensity, other.intensity)
            else:
                expected = f_and(first.intensity, other.intensity)
            assert record.intensity == pytest.approx(expected)

    def test_and_intensity_not_monotone_in_partner_rank(self, workload):
        """Figure 29: the best AND partner is not necessarily the next preference."""
        runner, preferences = workload
        algorithm = CombineTwoAlgorithm(runner, semantics=AND_SEMANTICS)
        records = algorithm.run_for_first(preferences, 0)
        applicable = [record.intensity for record in records if record.is_applicable]
        raw = [record.intensity for record in records]
        # Raw intensities strictly decrease with partner rank, but once
        # applicability is taken into account the usable sequence is no longer
        # the plain prefix of the ordered list.
        assert raw == sorted(raw, reverse=True)
        assert len(applicable) < len(raw)

    def test_first_limit_and_skip_empty(self, workload):
        runner, preferences = workload
        records = combine_two(runner, preferences, semantics=AND_SEMANTICS,
                              first_limit=1, skip_empty=True)
        assert all(record.is_applicable for record in records)
        assert len(records) <= len(preferences) - 1

    def test_empty_preferences_rejected(self, workload):
        runner, _ = workload
        with pytest.raises(EmptyPreferenceListError):
            combine_two(runner, [])
        with pytest.raises(EmptyPreferenceListError):
            CombineTwoAlgorithm(runner).run_for_first([], 0)

    def test_invalid_semantics_rejected(self, workload):
        runner, _ = workload
        with pytest.raises(ValueError):
            CombineTwoAlgorithm(runner, semantics="XOR")


class TestPartiallyCombineAll:
    def test_replays_paper_example(self, tiny_db):
        """The INFOCOM/author example of Section 5.3.2 produces 4 combinations."""
        runner = PreferenceQueryRunner(tiny_db)
        venue = tiny_db.scalar("SELECT venue FROM dblp LIMIT 1")
        aids = [row["aid"] for row in tiny_db.query(
            "SELECT DISTINCT aid FROM dblp_author LIMIT 2")]
        preferences = make_preferences([
            (f"dblp.venue = '{venue}'", 0.9),
            (f"dblp_author.aid = {aids[0]}", 0.5),
            (f"dblp_author.aid = {aids[1]}", 0.3),
        ])
        records = partially_combine_all(runner, preferences)
        sqls = [record.predicate.to_sql() for record in records]
        assert len(records) == 4
        assert sqls[0] == f"dblp.venue = '{venue}'"
        assert sqls[1] == f"dblp.venue = '{venue}' AND dblp_author.aid = {aids[0]}"
        assert sqls[2] == f"dblp.venue = '{venue}' AND dblp_author.aid = {aids[1]}"
        assert (f"dblp_author.aid = {aids[0]} OR dblp_author.aid = {aids[1]}") in sqls[3]

    def test_single_attribute_profile_is_linear(self, tiny_db):
        """Best case [1] of Proposition 5: one combination per preference."""
        runner = PreferenceQueryRunner(tiny_db)
        venues = [row["venue"] for row in
                  tiny_db.query("SELECT DISTINCT venue FROM dblp LIMIT 4")]
        preferences = make_preferences(
            [(f"dblp.venue = '{venue}'", 0.9 - 0.1 * i) for i, venue in enumerate(venues)])
        records = partially_combine_all(runner, preferences)
        assert len(records) == len(preferences)
        assert records[-1].size == len(preferences)

    def test_all_records_sizes_and_intensities(self, workload):
        runner, preferences = workload
        algorithm = PartiallyCombineAllAlgorithm(runner)
        records = algorithm.run(preferences)
        assert records[0].size == 1
        assert all(record.size >= 1 for record in records)
        assert all(0.0 <= record.intensity <= 1.0 for record in records)
        # Mixed clauses never conjoin two different venues, so every
        # combination keeps returning tuples unless authors do not intersect.
        assert any(record.is_applicable for record in records)

    def test_size_filters(self, workload):
        runner, preferences = workload
        algorithm = PartiallyCombineAllAlgorithm(runner)
        records = algorithm.run(preferences)
        for size in (2, 3):
            for record in algorithm.records_of_size(records, size):
                assert record.size == size
        at_least = algorithm.records_of_size_at_least(records, 3)
        assert all(record.size >= 3 for record in at_least)

    def test_max_preferences_truncates(self, workload):
        runner, preferences = workload
        records = partially_combine_all(runner, preferences, max_preferences=2)
        assert max(record.size for record in records) <= 2

    def test_empty_rejected(self, workload):
        runner, _ = workload
        with pytest.raises(EmptyPreferenceListError):
            partially_combine_all(runner, [])


class TestBiasRandom:
    def test_deterministic_with_seed(self, workload):
        runner, preferences = workload
        first = bias_random_selection(runner, preferences, seed=99, repetitions=2)
        second = bias_random_selection(runner, preferences, seed=99, repetitions=2)
        assert [(run.valid_combinations, run.invalid_combinations) for run in first] == \
               [(run.valid_combinations, run.invalid_combinations) for run in second]

    def test_counts_valid_and_invalid(self, workload):
        runner, preferences = workload
        run = bias_random_selection(runner, preferences, seed=5)[0]
        assert run.total_checked == run.valid_combinations + run.invalid_combinations
        assert run.total_checked > 0
        # Every recorded combination is applicable and has at least 2 predicates.
        for record in run.records:
            assert record.size >= 2
            assert record.is_applicable

    def test_flip_coin_prefers_high_intensity(self, workload):
        _, preferences = workload
        algorithm = BiasRandomSelectionAlgorithm(
            PreferenceQueryRunner.__new__(PreferenceQueryRunner), rng=random.Random(3))
        picks = [algorithm.flip_coin(preferences).intensity for _ in range(300)]
        top = preferences[0].intensity
        assert picks.count(top) > len(picks) / len(preferences)

    def test_flip_coin_empty_returns_none(self):
        algorithm = BiasRandomSelectionAlgorithm(
            PreferenceQueryRunner.__new__(PreferenceQueryRunner), rng=random.Random(3))
        assert algorithm.flip_coin([]) is None

    def test_repetitions_validated(self, workload):
        runner, preferences = workload
        algorithm = BiasRandomSelectionAlgorithm(runner, rng=random.Random(1))
        with pytest.raises(ValueError):
            algorithm.run_many(preferences, 0)

    def test_empty_preferences_rejected(self, workload):
        runner, _ = workload
        algorithm = BiasRandomSelectionAlgorithm(runner, rng=random.Random(1))
        with pytest.raises(EmptyPreferenceListError):
            algorithm.run([])

    def test_max_extensions_bounds_work(self, workload):
        runner, preferences = workload
        algorithm = BiasRandomSelectionAlgorithm(runner, rng=random.Random(7))
        run = algorithm.run(preferences, max_extensions=1)
        assert run.total_checked <= len(preferences)
