"""Property-based tests (hypothesis) for the load-harness latency statistics.

The load generator's SLO numbers are only as trustworthy as the histogram
math underneath them, so the three guarantees the report relies on are
pinned down as properties over arbitrary sample sets:

* merging per-worker histograms is *exactly* recording every sample into
  one histogram (bucket counts, count, sum, min, max — all of it);
* quantiles are monotone in ``q`` (p50 <= p95 <= p99 for every sample set);
* quantiles are *exact* (no bucketing error) for samples inside the
  unit-bucket range, and within the documented ≈3.1% relative error bound
  everywhere else.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.stats import (
    REPORT_QUANTILES,
    SUB_BUCKET_BITS,
    LatencyHistogram,
    bucket_index,
    bucket_lower_bound,
)

#: Latencies from 0 µs up to ~1.2 h — every magnitude the harness can see.
samples_us = st.lists(st.integers(min_value=0, max_value=2**32),
                      min_size=1, max_size=200)
#: Samples that stay inside the exact unit-wide buckets.
unit_samples_us = st.lists(
    st.integers(min_value=0, max_value=(1 << SUB_BUCKET_BITS) - 1),
    min_size=1, max_size=200)


def _fill(values):
    histogram = LatencyHistogram()
    for value in values:
        histogram.record_us(value)
    return histogram


def _nearest_rank(values, q):
    """Reference nearest-rank quantile over the raw samples."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# -- bucket geometry ---------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**40))
def test_bucket_roundtrip_bounds_value(value):
    """Every value lands in a bucket whose lower bound is <= the value."""
    index = bucket_index(value)
    lower = bucket_lower_bound(index)
    assert lower <= value
    # ...and the next bucket starts strictly above the value.
    assert bucket_lower_bound(index + 1) > value


@given(st.integers(min_value=0, max_value=2**40))
def test_bucket_relative_error_bound(value):
    """Reporting the lower bound under-reports by at most 1/2**BITS."""
    lower = bucket_lower_bound(bucket_index(value))
    assert value - lower <= max(value / (1 << SUB_BUCKET_BITS), 0)


def test_bucket_index_rejects_negative():
    with pytest.raises(ValueError):
        bucket_index(-1)


# -- merge == concatenate ----------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=2**32),
                         min_size=0, max_size=60),
                min_size=1, max_size=6))
def test_merge_equals_concatenated_recording(worker_samples):
    """Merging per-worker histograms == one histogram of all samples."""
    per_worker = [_fill(values) for values in worker_samples]
    merged = LatencyHistogram.merged(per_worker)
    concatenated = _fill([value for values in worker_samples
                          for value in values])
    assert merged == concatenated
    assert merged.count == sum(len(values) for values in worker_samples)
    # Merging must not have mutated the sources' counts.
    for histogram, values in zip(per_worker, worker_samples):
        assert histogram.count == len(values)


@given(samples_us, samples_us)
@settings(max_examples=50, deadline=None)
def test_merge_is_commutative_on_summaries(left_values, right_values):
    left_first = LatencyHistogram.merged([_fill(left_values),
                                          _fill(right_values)])
    right_first = LatencyHistogram.merged([_fill(right_values),
                                           _fill(left_values)])
    assert left_first == right_first


# -- cross-process serialization ---------------------------------------------


def _ship(histogram):
    """Round-trip a histogram through an actual process boundary's wire
    format: ``to_dict`` -> JSON text -> ``from_dict``."""
    return LatencyHistogram.from_dict(json.loads(json.dumps(
        histogram.to_dict())))


@given(samples_us)
@settings(max_examples=80, deadline=None)
def test_to_dict_from_dict_roundtrip_is_exact(values):
    """Full state survives the wire: buckets, count, sum, min, max."""
    histogram = _fill(values)
    clone = _ship(histogram)
    assert clone == histogram
    for q in REPORT_QUANTILES:
        assert clone.quantile_us(q) == histogram.quantile_us(q)
    assert clone.as_dict() == histogram.as_dict()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=2**32),
                         min_size=0, max_size=60),
                min_size=1, max_size=6))
def test_merged_across_processes_equals_recorded_in_one(process_samples):
    """The multi-process harness's core exactness property: per-process
    histograms shipped home as primitives and merged are *identical* to one
    histogram that recorded every sample in a single process."""
    shipped = [_ship(_fill(values)) for values in process_samples]
    merged = LatencyHistogram.merged(shipped)
    one_process = _fill([value for values in process_samples
                         for value in values])
    assert merged == one_process
    assert merged.as_dict() == one_process.as_dict()


def test_empty_histogram_roundtrips():
    assert _ship(LatencyHistogram()) == LatencyHistogram()


def test_from_dict_rejects_corrupt_payloads():
    payload = _fill([5, 10]).to_dict()
    short = dict(payload, count=3)
    with pytest.raises(ValueError):
        LatencyHistogram.from_dict(short)
    negative = dict(payload, buckets=[[5, -1]], count=-1)
    with pytest.raises(ValueError):
        LatencyHistogram.from_dict(negative)


# -- quantile properties -----------------------------------------------------


@given(samples_us)
@settings(max_examples=80, deadline=None)
def test_report_quantiles_are_monotone(values):
    """p50 <= p95 <= p99 on any sample set (the report's sanity invariant)."""
    histogram = _fill(values)
    quantiles = [histogram.quantile_us(q) for q in REPORT_QUANTILES]
    assert quantiles == sorted(quantiles)
    summary = histogram.as_dict()
    assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
    # Quantiles report bucket lower bounds, so they sit between the
    # (bucketed) minimum and the raw maximum.
    assert bucket_lower_bound(bucket_index(histogram.min_us)) \
        <= histogram.quantile_us(0.5)
    assert histogram.quantile_us(1.0) <= summary["max_ms"] * 1000


@given(unit_samples_us, st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_quantiles_exact_in_unit_bucket_range(values, q):
    """Below 2**SUB_BUCKET_BITS µs every bucket is unit-wide: quantiles
    equal the reference nearest-rank quantile over the raw samples."""
    histogram = _fill(values)
    assert histogram.quantile_us(q) == _nearest_rank(values, q)


@given(samples_us, st.floats(min_value=0.01, max_value=1.0,
                             allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_quantiles_within_error_bound_everywhere(values, q):
    """At any magnitude the reported quantile is the true nearest-rank
    value rounded down by at most one bucket width (≈3.1% relative)."""
    histogram = _fill(values)
    reported = histogram.quantile_us(q)
    true = _nearest_rank(values, q)
    assert reported <= true
    assert true - reported <= max(true / (1 << SUB_BUCKET_BITS), 0)


def test_known_distribution_quantiles():
    """Spot-check on a fixed distribution: 1..100 µs, all unit-exact? No —
    values above 31 µs are bucketed; check the documented behaviour."""
    histogram = _fill(range(1, 101))
    assert histogram.quantile_us(0.5) == bucket_lower_bound(bucket_index(50))
    assert histogram.quantile_us(0.01) == 1
    assert histogram.quantile_us(1.0) == bucket_lower_bound(bucket_index(100))
    assert histogram.count == 100
    assert histogram.min_us == 1 and histogram.max_us == 100
    assert histogram.mean_us == pytest.approx(50.5)


def test_empty_histogram_reports_zeroes():
    histogram = LatencyHistogram()
    assert histogram.quantile_us(0.99) == 0
    assert histogram.as_dict()["count"] == 0
    assert len(histogram) == 0


def test_record_seconds_converts_to_microseconds():
    histogram = LatencyHistogram()
    histogram.record(0.000_012)  # 12 µs — unit-bucket range, exact
    assert histogram.quantile_us(1.0) == 12


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        LatencyHistogram().quantile_us(1.5)
