"""Tests for the sharded Top-K serving cluster (repro.serving.cluster)."""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError, UnknownUserError
from repro.serving import (
    ClusterMutationReport,
    HashPartitioner,
    ModuloPartitioner,
    Partitioner,
    ReplayConfig,
    ReplayDriver,
    ShardedTopKServer,
    TopKServer,
)
from repro.sqldb.database import Database
from repro.workload.dblp import DblpConfig, Paper, generate_dblp
from repro.workload.loader import append_papers, load_dataset

DBLP = DblpConfig(n_papers=200, n_authors=60, n_venues=8, seed=7)
REPLAY = ReplayConfig(users=10, requests=60, k=4, seed=3)


def make_world():
    driver = ReplayDriver(REPLAY)
    return driver, driver.build_world(DBLP)


@pytest.fixture()
def world():
    driver, db = make_world()
    yield driver, db
    db.close()


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        partitioner = HashPartitioner()
        for shards in (1, 2, 3, 4, 8):
            for uid in range(10_000, 10_200):
                shard = partitioner.shard_of(uid, shards)
                assert 0 <= shard < shards
                assert shard == partitioner.shard_of(uid, shards)

    def test_contiguous_uids_spread_across_all_shards(self):
        """The replay populations are contiguous uid ranges; every shard
        must receive a healthy slice (no striping pathologies)."""
        partitioner = HashPartitioner()
        shards = 4
        placement = [partitioner.shard_of(uid, shards)
                     for uid in range(10_001, 10_101)]
        counts = [placement.count(index) for index in range(shards)]
        assert all(count >= 10 for count in counts), counts

    def test_stable_across_instances(self):
        """Placement depends only on (uid, shards, seed) — never on process
        state, so sessions rebuilt after a restart land on the same shard."""
        assert all(HashPartitioner().shard_of(uid, 8)
                   == HashPartitioner().shard_of(uid, 8)
                   for uid in range(500))

    def test_seed_changes_placement(self):
        default = HashPartitioner()
        reseeded = HashPartitioner(seed=12345)
        placements = [(default.shard_of(uid, 4), reseeded.shard_of(uid, 4))
                      for uid in range(200)]
        assert any(a != b for a, b in placements)

    def test_satisfies_protocol(self):
        assert isinstance(HashPartitioner(), Partitioner)
        assert isinstance(ModuloPartitioner(), Partitioner)


class TestRouting:
    def test_requests_land_on_owning_shard_only(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=3, capacity=4,
                               partitioner=ModuloPartitioner()) as cluster:
            uid = REPLAY.uid_base  # 10_001 -> shard 10_001 % 3
            owner = uid % 3
            cluster.top_k(uid, k=3)
            assert cluster.shard_of(uid) == owner
            resident = cluster.resident_uids()
            assert uid in resident[owner]
            for index, uids in resident.items():
                if index != owner:
                    assert uid not in uids

    def test_custom_partitioner_is_honoured(self, world):
        class PinToZero:
            def shard_of(self, uid: int, shards: int) -> int:
                return 0

        driver, db = world
        with ShardedTopKServer(db, shards=4, capacity=8,
                               partitioner=PinToZero()) as cluster:
            for uid in (REPLAY.uid_base, REPLAY.uid_base + 1):
                cluster.top_k(uid, k=3)
            assert cluster.resident_uids()[0]
            assert all(not cluster.resident_uids()[index]
                       for index in (1, 2, 3))

    def test_partitioner_out_of_range_is_rejected(self, world):
        class Broken:
            def shard_of(self, uid: int, shards: int) -> int:
                return shards  # one past the end

        driver, db = world
        with ShardedTopKServer(db, shards=2, partitioner=Broken()) as cluster:
            with pytest.raises(ServingError, match="outside range"):
                cluster.top_k(REPLAY.uid_base, k=3)

    def test_unknown_user_raises(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2) as cluster:
            with pytest.raises(UnknownUserError):
                cluster.top_k(999_999, k=3)

    def test_warm_repeat_costs_zero_sql(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2, capacity=4) as cluster:
            uid = REPLAY.uid_base
            cold = cluster.top_k(uid, k=4)
            warm = cluster.top_k(uid, k=4)
            assert not cold.cache_hit
            assert warm.cache_hit and warm.sql_statements == 0
            assert warm.ranking == cold.ranking

    def test_rejects_zero_shards(self, world):
        driver, db = world
        with pytest.raises(ServingError, match="at least one shard"):
            ShardedTopKServer(db, shards=0)


class TestBroadcast:
    def test_mutation_reaches_every_shard(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=3, capacity=8) as cluster:
            for uid in driver.config.uids()[:6]:
                cluster.top_k(uid, k=4)
            report = cluster.insert_tuples(
                [Paper(pid=90_001, title="X", venue="V0", year=2011)],
                paper_authors=[(90_001, 1)])
            assert isinstance(report, ClusterMutationReport)
            assert report.kind == "tuples_inserted"
            assert len(report.shard_reports) == 3
            assert [shard.shard for shard in report.shard_reports] == [0, 1, 2]
            assert report.results_invalidated == sum(
                shard.results_invalidated for shard in report.shard_reports)
            assert report.results_spared == sum(
                shard.results_spared for shard in report.shard_reports)

    def test_direct_loader_mutation_also_fans_out(self, world):
        """A mutation through the bare loader API (not the cluster front
        door) must still invalidate every shard exactly once."""
        driver, db = world
        with ShardedTopKServer(db, shards=2, capacity=8) as cluster:
            for uid in driver.config.uids()[:6]:
                cluster.top_k(uid, k=4)
            before = cluster.broadcasts
            append_papers(db, [Paper(pid=90_002, title="X", venue="V1",
                                     year=2012)],
                          paper_authors=[(90_002, 2)])
            assert cluster.broadcasts == before + 1
            # Every still-cached answer must be fresh.
            for uid in cluster.results.cached_users():
                entry = cluster.results.peek(uid, 4)
                from repro.serving import fresh_top_k
                assert list(entry.ranking) == fresh_top_k(db, uid, 4)

    def test_noop_delete_spares_everything(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2, capacity=8) as cluster:
            for uid in driver.config.uids()[:4]:
                cluster.top_k(uid, k=4)
            cached = len(cluster.results)
            report = cluster.delete_tuples([999_999_999])
            assert report.kind == "tuples_deleted"
            assert report.results_invalidated == 0
            assert report.results_spared == cached
            assert len(cluster.results) == cached

    def test_parallel_fanout_matches_serial(self):
        """The concurrent fan-out path must invalidate exactly what the
        serial path invalidates — shard for shard."""
        reports = {}
        for parallel in (False, True):
            driver, db = make_world()
            try:
                with ShardedTopKServer(db, shards=4, capacity=8,
                                       parallel_fanout=parallel) as cluster:
                    for uid in driver.config.uids():
                        cluster.top_k(uid, k=4)
                    outcome = cluster.insert_tuples(
                        [Paper(pid=91_000, title="X", venue="V2", year=2012)],
                        paper_authors=[(91_000, 3)])
                    reports[parallel] = [shard.as_dict()
                                         for shard in outcome.shard_reports]
                    assert cluster.parallel_fanout is parallel
            finally:
                db.close()
        assert reports[False] == reports[True]

    def test_mapping_payloads_accepted(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2) as cluster:
            report = cluster.insert_tuples(
                [{"pid": 92_000, "venue": "V3", "year": 2010, "aids": [4]}])
            assert report.papers == 1
            # The aids sequence expanded into one author link on any backend.
            rows = db.joined_rows([92_000])
            assert [(row["pid"], row["aid"]) for row in rows] == [(92_000, 4)]

    def test_report_as_dict_shape(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2) as cluster:
            payload = cluster.insert_tuples(
                [Paper(pid=93_000, title="X", venue="V4", year=2013)],
                paper_authors=[(93_000, 5)]).as_dict()
        assert payload["kind"] == "tuples_inserted"
        assert payload["papers"] == 1
        assert len(payload["shards"]) == 2
        assert {"shard", "results_invalidated", "results_spared",
                "index_entries_dropped"} <= set(payload["shards"][0])


class TestClusterMetrics:
    def test_stats_aggregate_per_shard_counters(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=3, capacity=4) as cluster:
            for uid in driver.config.uids()[:6]:
                cluster.top_k(uid, k=4)
                cluster.top_k(uid, k=4)  # warm repeat
            cluster.insert_tuples(
                [Paper(pid=94_000, title="X", venue="V5", year=2011)],
                paper_authors=[(94_000, 6)])
            stats = cluster.stats()
        assert stats["shards"] == 3
        assert stats["requests"]["reads"] == 12
        assert stats["requests"]["read_hits"] == sum(
            shard["requests"]["read_hits"] for shard in stats["per_shard"])
        assert stats["warm_rate"] == pytest.approx(
            stats["requests"]["read_hits"] / stats["requests"]["reads"])
        assert stats["broadcasts"] == 1
        assert len(stats["per_shard"]) == 3
        assert [shard["shard"] for shard in stats["per_shard"]] == [0, 1, 2]
        assert stats["results"]["entries"] == len(cluster.results)
        assert stats["sql_statements_total"] == db.statements_executed

    def test_results_view_routes_to_owner(self, world):
        driver, db = world
        with ShardedTopKServer(db, shards=2, capacity=4,
                               partitioner=ModuloPartitioner()) as cluster:
            uid = REPLAY.uid_base
            cluster.top_k(uid, k=4)
            assert (uid, 4) in cluster.results
            assert cluster.results.peek(uid, 4) is not None
            assert cluster.results.cached_users() == [uid]
            assert len(cluster.results) == 1

    def test_close_unsubscribes_and_stops_fanout(self, world):
        driver, db = world
        cluster = ShardedTopKServer(db, shards=2, parallel_fanout=True)
        cluster.top_k(REPLAY.uid_base, k=3)
        cluster.close()
        before = cluster.broadcasts
        append_papers(db, [Paper(pid=95_000, title="X", venue="V6",
                                 year=2012)],
                      paper_authors=[(95_000, 7)])
        assert cluster.broadcasts == before
        cluster.close()  # idempotent


class TestEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_cluster_matches_single_server_and_fresh(self, shards):
        """The acceptance criterion: after every mutation of every kind the
        cluster's answers equal the single server's and a from-scratch
        recomputation, in lockstep over identical worlds."""
        driver = ReplayDriver(ReplayConfig(users=8, requests=48, k=4, seed=11))
        checked = driver.verify_cluster_equivalence(
            DBLP, shards=shards, capacity=4, parallel_fanout=shards > 1)
        assert checked > 0

    @pytest.mark.parametrize("parallel_fanout", [False, True])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_repaired_answers_stay_equivalent(self, shards, parallel_fanout):
        """Repairs happen on every shard topology — serial and parallel
        fan-out alike — and every repaired answer passes the three-way
        lockstep check (cluster == single server == fresh)."""
        driver = ReplayDriver(ReplayConfig(users=8, requests=48, k=4, seed=11,
                                           insert_weight=1.2, delete_weight=1.0,
                                           data_update_weight=1.0))
        stats = {}
        checked = driver.verify_cluster_equivalence(
            DBLP, shards=shards, capacity=4, parallel_fanout=parallel_fanout,
            stats_out=stats)
        assert checked > 0
        assert stats["cluster"]["results"]["repairs"] > 0
        assert stats["server"]["results"]["repairs"] > 0
        # Repair must dominate: the mutation-heavy mix keeps most affected
        # answers maintained in place rather than dropped.
        cluster_results = stats["cluster"]["results"]
        assert cluster_results["repairs"] >= cluster_results["repair_fallbacks"]

    def test_replay_verify_covers_all_mutation_kinds(self):
        driver, db = make_world()
        try:
            with ShardedTopKServer(db, shards=3, capacity=4) as cluster:
                report = driver.run_sharded(cluster, driver.schedule(db),
                                            verify=True)
        finally:
            db.close()
        assert report.label == "sharded-3"
        assert report.verified_results > 0
        assert report.deletes > 0 and report.data_updates > 0
        assert report.read_hits > 0
        assert report.zero_sql_reads == report.read_hits

    def test_sharded_events_carry_per_shard_breakdown(self):
        driver, db = make_world()
        try:
            with ShardedTopKServer(db, shards=2, capacity=6) as cluster:
                report = driver.run_sharded(cluster, driver.schedule(db))
        finally:
            db.close()
        assert report.mutation_events
        for event in report.mutation_events:
            assert len(event["shards"]) == 2
            assert event["results_invalidated"] == sum(
                shard["results_invalidated"] for shard in event["shards"])
