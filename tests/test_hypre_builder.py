"""Unit tests for HYPRE graph construction (Algorithm 1) and conflict handling."""

from __future__ import annotations

import pytest

from repro.core.hypre import (
    HypreGraph,
    HypreGraphBuilder,
    build_hypre_graph,
    check_conflict,
    classify_edge,
)
from repro.core.hypre.conflict import ConflictKind
from repro.core.hypre.graph import SOURCE_COMPUTED, SOURCE_DEFAULT, SOURCE_USER
from repro.core.intensity import intensity_left, intensity_right
from repro.core.preference import (
    ProfileRegistry,
    QualitativePreference,
    QuantitativePreference,
    UserProfile,
)
from repro.graphstore import CYCLE, DISCARD, PREFERS


def make_builder() -> HypreGraphBuilder:
    return HypreGraphBuilder(default_strategy="default")


class TestQuantitativeInsertion:
    def test_single_insert(self):
        builder = make_builder()
        node_id, report = builder.add_quantitative(
            QuantitativePreference(1, "venue = 'VLDB'", 0.8))
        assert report.quantitative_nodes == 1
        assert builder.hypre.intensity_of(node_id) == 0.8
        assert builder.hypre.intensity_source(node_id) == SOURCE_USER

    def test_duplicate_predicate_averages_intensity(self):
        builder = make_builder()
        builder.add_quantitative(QuantitativePreference(1, "venue = 'VLDB'", 0.8))
        node_id, report = builder.add_quantitative(
            QuantitativePreference(1, "venue = 'VLDB'", 0.4))
        assert report.quantitative_merged == 1
        assert builder.hypre.intensity_of(node_id) == pytest.approx(0.6)

    def test_batch_path_used_for_unique_predicates(self):
        builder = make_builder()
        prefs = [QuantitativePreference(1, f"dblp_author.aid = {i}", 0.1 * i)
                 for i in range(1, 6)]
        report = builder.add_all_quantitative(1, prefs)
        assert report.quantitative_nodes == 5
        assert report.quantitative_seconds >= 0.0
        assert len(builder.hypre.user_node_ids(1)) == 5

    def test_non_batch_path_merges_duplicates(self):
        builder = make_builder()
        prefs = [QuantitativePreference(1, "venue = 'A'", 0.2),
                 QuantitativePreference(1, "venue = 'A'", 0.6)]
        report = builder.add_all_quantitative(1, prefs)
        assert report.quantitative_nodes == 1
        assert report.quantitative_merged == 1
        node_id = builder.hypre.find_node_id(1, "venue = 'A'")
        assert builder.hypre.intensity_of(node_id) == pytest.approx(0.4)


class TestQualitativeInsertion:
    def test_both_nodes_new_assigns_default_and_computes_left(self):
        builder = make_builder()
        report = builder.add_qualitative(
            QualitativePreference(1, "venue = 'VLDB'", "venue = 'SIGMOD'", 0.3))
        assert report.qualitative_edges == 1
        assert report.defaults_assigned == 1
        assert report.intensities_computed == 1
        hypre = builder.hypre
        left = hypre.find_node_id(1, "venue = 'VLDB'")
        right = hypre.find_node_id(1, "venue = 'SIGMOD'")
        assert hypre.intensity_source(right) == SOURCE_DEFAULT
        assert hypre.intensity_source(left) == SOURCE_COMPUTED
        assert hypre.intensity_of(right) == pytest.approx(0.5)
        assert hypre.intensity_of(left) == pytest.approx(intensity_left(0.3, 0.5))

    def test_left_existing_right_new_computes_right(self):
        builder = make_builder()
        builder.add_quantitative(QuantitativePreference(1, "venue = 'VLDB'", 0.8))
        builder.add_qualitative(
            QualitativePreference(1, "venue = 'VLDB'", "venue = 'SIGMOD'", 0.3))
        hypre = builder.hypre
        right = hypre.find_node_id(1, "venue = 'SIGMOD'")
        assert hypre.intensity_of(right) == pytest.approx(intensity_right(0.3, 0.8))
        assert hypre.intensity_source(right) == SOURCE_COMPUTED

    def test_right_existing_left_new_computes_left(self):
        builder = make_builder()
        builder.add_quantitative(QuantitativePreference(1, "year >= 2009", 0.8))
        builder.add_qualitative(
            QualitativePreference(1, "venue = 'VLDB'", "year >= 2009", 0.2))
        hypre = builder.hypre
        left = hypre.find_node_id(1, "venue = 'VLDB'")
        assert hypre.intensity_of(left) == pytest.approx(intensity_left(0.2, 0.8))

    def test_consistent_existing_nodes_keep_values(self):
        builder = make_builder()
        builder.add_quantitative(QuantitativePreference(1, "a = 1", 0.8))
        builder.add_quantitative(QuantitativePreference(1, "a = 2", 0.3))
        report = builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", 0.5))
        assert report.qualitative_edges == 1
        assert report.intensities_recomputed == 0
        assert builder.hypre.intensity_of(builder.hypre.find_node_id(1, "a = 1")) == 0.8
        assert builder.hypre.intensity_of(builder.hypre.find_node_id(1, "a = 2")) == 0.3

    def test_incompatible_unconnected_nodes_get_repaired(self):
        builder = make_builder()
        builder.add_quantitative(QuantitativePreference(1, "a = 1", 0.2))
        builder.add_quantitative(QuantitativePreference(1, "a = 2", 0.9))
        report = builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", 0.5))
        assert report.qualitative_edges == 1
        assert report.intensities_recomputed == 1
        hypre = builder.hypre
        left_value = hypre.intensity_of(hypre.find_node_id(1, "a = 1"))
        right_value = hypre.intensity_of(hypre.find_node_id(1, "a = 2"))
        assert left_value >= right_value

    def test_incompatible_connected_nodes_get_discarded(self):
        builder = make_builder()
        # Build a chain so that both endpoints of the conflicting edge are
        # already connected to the PREFERS subgraph.
        builder.add_quantitative(QuantitativePreference(1, "a = 1", 0.2))
        builder.add_quantitative(QuantitativePreference(1, "a = 2", 0.9))
        builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 0", 0.1))
        builder.add_qualitative(QualitativePreference(1, "a = 3", "a = 2", 0.1))
        report = builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", 0.5))
        assert report.discarded_edges == 1
        assert report.qualitative_edges == 0

    def test_cycle_edge_marked(self):
        builder = make_builder()
        builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", 0.3))
        builder.add_qualitative(QualitativePreference(1, "a = 2", "a = 3", 0.3))
        report = builder.add_qualitative(QualitativePreference(1, "a = 3", "a = 1", 0.3))
        assert report.cycle_edges == 1
        cycles = builder.hypre.qualitative_edges(1, (CYCLE,))
        assert len(cycles) == 1

    def test_self_preference_is_cycle(self):
        builder = make_builder()
        report = builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 1", 0.3))
        assert report.cycle_edges == 1

    def test_negative_strength_is_normalised(self):
        builder = make_builder()
        builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", -0.4))
        hypre = builder.hypre
        # The preference is equivalent to "a=2 preferred over a=1".
        left = hypre.find_node_id(1, "a = 2")
        right = hypre.find_node_id(1, "a = 1")
        edges = hypre.qualitative_edges(1, (PREFERS,))
        assert len(edges) == 1
        assert edges[0].source == left and edges[0].target == right

    def test_zero_strength_keeps_equal_intensities(self):
        builder = make_builder()
        builder.add_qualitative(QualitativePreference(1, "a = 1", "a = 2", 0.0))
        hypre = builder.hypre
        left_value = hypre.intensity_of(hypre.find_node_id(1, "a = 1"))
        right_value = hypre.intensity_of(hypre.find_node_id(1, "a = 2"))
        assert left_value == pytest.approx(right_value)


class TestProfileAndRegistryBuilds:
    def test_build_profile_counts(self, dblp_profile):
        hypre, report = build_hypre_graph(dblp_profile)
        assert report.quantitative_nodes == len(dblp_profile.quantitative)
        assert (report.qualitative_edges + report.cycle_edges
                + report.discarded_edges) == len(dblp_profile.qualitative)
        # The qualitative preferences introduced new quantitative nodes.
        assert len(hypre.user_node_ids(1)) > len(dblp_profile.quantitative)

    def test_build_registry_merges_users(self):
        registry = ProfileRegistry()
        for uid in (1, 2):
            profile = registry.get_or_create(uid)
            profile.add_quantitative("venue = 'VLDB'", 0.5)
            profile.add_qualitative("venue = 'VLDB'", "venue = 'PODS'", 0.2)
        hypre, report = build_hypre_graph(registry)
        assert hypre.user_ids() == [1, 2]
        assert report.quantitative_nodes == 2
        assert report.qualitative_edges == 2

    def test_build_rejects_other_types(self):
        with pytest.raises(TypeError):
            build_hypre_graph(["not a profile"])

    def test_coverage_increases_via_conversion(self, dblp_profile):
        """The unified model yields more quantitative preferences (Fig. 26/27)."""
        hypre, _ = build_hypre_graph(dblp_profile)
        converted = hypre.quantitative_preferences(1, include_negative=True)
        assert len(converted) > len(dblp_profile.quantitative)

    def test_every_prefers_edge_ordered(self, dblp_profile):
        hypre, _ = build_hypre_graph(dblp_profile)
        for edge in hypre.qualitative_edges(1, (PREFERS,)):
            left_value = hypre.intensity_of(edge.source)
            right_value = hypre.intensity_of(edge.target)
            assert left_value >= right_value - 1e-9


class TestConflictHelpers:
    def test_check_conflict_requires_user_values(self):
        assert not check_conflict(None, 0.5, False, True)
        assert not check_conflict(0.2, 0.5, False, True)
        assert check_conflict(0.2, 0.5, True, True)
        assert not check_conflict(0.5, 0.2, True, True)

    def test_classify_edge_cycle(self):
        hypre = HypreGraph()
        a, _ = hypre.create_or_return_node(1, "a = 1", 0.5)
        b, _ = hypre.create_or_return_node(1, "a = 2", 0.3)
        hypre.add_prefers_edge(a, b, 0.1)
        assert classify_edge(hypre, b, a).kind is ConflictKind.CYCLE

    def test_classify_edge_incompatible_when_both_connected(self):
        hypre = HypreGraph()
        a, _ = hypre.create_or_return_node(1, "a = 1", 0.2)
        b, _ = hypre.create_or_return_node(1, "a = 2", 0.9)
        c, _ = hypre.create_or_return_node(1, "a = 3", 0.1)
        d, _ = hypre.create_or_return_node(1, "a = 4", 0.95)
        hypre.add_prefers_edge(a, c, 0.1)
        hypre.add_prefers_edge(d, b, 0.1)
        assert classify_edge(hypre, a, b).kind is ConflictKind.INCOMPATIBLE

    def test_classify_edge_repairable_when_one_side_unconnected(self):
        hypre = HypreGraph()
        a, _ = hypre.create_or_return_node(1, "a = 1", 0.2)
        b, _ = hypre.create_or_return_node(1, "a = 2", 0.9)
        assert classify_edge(hypre, a, b).kind is ConflictKind.NONE

    def test_report_merge_accumulates(self, dblp_profile):
        builder = make_builder()
        report = builder.build_profile(dblp_profile)
        as_dict = report.as_dict()
        assert as_dict["quantitative_nodes"] == len(dblp_profile.quantitative)
        assert as_dict["qualitative_seconds"] >= 0.0
