"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, list_experiments, main, run_experiment, run_topk


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_command_defaults(self):
        args = build_parser().parse_args(["experiment", "table10"])
        assert args.command == "experiment"
        assert args.name == "table10"
        assert args.scale == "tiny"
        assert args.uid is None

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_topk_command(self):
        args = build_parser().parse_args(["topk", "--k", "5", "--scale", "tiny"])
        assert args.command == "topk"
        assert args.k == 5
        assert args.reuse_index is False

    def test_topk_reuse_index_flag(self):
        args = build_parser().parse_args(["topk", "--reuse-index"])
        assert args.reuse_index is True

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestListAndDispatch:
    def test_list_mentions_every_experiment(self):
        text = list_experiments()
        for name in EXPERIMENTS:
            assert name in text

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_run_counting_experiment_without_context(self):
        text = run_experiment("prop3_4")
        assert "AND-only" in text

    def test_run_table10(self):
        text = run_experiment("table10", scale="tiny")
        assert "papers" in text

    def test_run_fig28(self):
        text = run_experiment("fig28", scale="tiny")
        assert "HYPRE_Graph" in text

    def test_run_topk(self):
        text = run_topk("tiny", k=5)
        assert "Top-5" in text
        assert "intensity" in text
        assert "pair index" not in text

    def test_run_topk_reuse_index_reports_stats(self):
        text = run_topk("tiny", k=5, reuse_index=True)
        assert "Top-5" in text
        assert "pair index" in text
        assert "pre-filtered" in text


class TestMainEntryPoint:
    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        assert "table10" in capsys.readouterr().out

    def test_main_experiment(self, capsys):
        assert main(["experiment", "fig26_27", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "graph_count" in output

    def test_main_topk(self, capsys):
        assert main(["topk", "--scale", "tiny", "--k", "3"]) == 0
        assert "Top-3" in capsys.readouterr().out
