"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    list_experiments,
    main,
    run_experiment,
    run_load,
    run_serve_replay,
    run_topk,
)


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_command_defaults(self):
        args = build_parser().parse_args(["experiment", "table10"])
        assert args.command == "experiment"
        assert args.name == "table10"
        assert args.scale == "tiny"
        assert args.uid is None

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_topk_command(self):
        args = build_parser().parse_args(["topk", "--k", "5", "--scale", "tiny"])
        assert args.command == "topk"
        assert args.k == 5
        assert args.reuse_index is False

    def test_topk_reuse_index_flag(self):
        args = build_parser().parse_args(["topk", "--reuse-index"])
        assert args.reuse_index is True

    def test_topk_json_flag(self):
        args = build_parser().parse_args(["topk", "--json"])
        assert args.as_json is True

    def test_serve_replay_defaults(self):
        args = build_parser().parse_args(["serve-replay"])
        assert args.command == "serve-replay"
        assert args.users == 50
        assert args.requests == 300
        assert args.as_json is False
        assert args.no_baseline is False

    def test_serve_replay_options(self):
        args = build_parser().parse_args(
            ["serve-replay", "--users", "20", "--requests", "80",
             "--capacity", "8", "--no-baseline", "--json"])
        assert (args.users, args.requests, args.capacity) == (20, 80, 8)
        assert args.no_baseline and args.as_json
        assert args.shards == 0  # sharded arm disabled by default

    def test_serve_replay_shards_flag(self):
        args = build_parser().parse_args(["serve-replay", "--shards", "4"])
        assert args.shards == 4

    def test_repair_delta_flag(self):
        assert build_parser().parse_args(
            ["serve-replay"]).repair_delta is None
        assert build_parser().parse_args(
            ["serve-replay", "--repair-delta", "-1"]).repair_delta == -1
        assert build_parser().parse_args(["load"]).repair_delta is None
        assert build_parser().parse_args(
            ["load", "--repair-delta", "8"]).repair_delta == 8

    def test_load_defaults(self):
        args = build_parser().parse_args(["load"])
        assert args.command == "load"
        assert args.threads == 2
        assert args.processes == 1
        assert args.duration == 2.0
        assert args.qps is None  # closed loop by default
        assert args.shards == 0
        assert args.audit_interval == 0.5
        assert args.output is None and args.as_json is False

    def test_load_options(self):
        args = build_parser().parse_args(
            ["load", "--threads", "4", "--qps", "500", "--duration", "1.5",
             "--shards", "4", "--backend", "memory",
             "--output", "BENCH_loadgen.json", "--json"])
        assert (args.threads, args.qps, args.shards) == (4, 500.0, 4)
        assert args.duration == 1.5
        assert args.backend == "memory"
        assert args.output == "BENCH_loadgen.json" and args.as_json

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestListAndDispatch:
    def test_list_mentions_every_experiment(self):
        text = list_experiments()
        for name in EXPERIMENTS:
            assert name in text

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_run_counting_experiment_without_context(self):
        text = run_experiment("prop3_4")
        assert "AND-only" in text

    def test_run_table10(self):
        text = run_experiment("table10", scale="tiny")
        assert "papers" in text

    def test_run_fig28(self):
        text = run_experiment("fig28", scale="tiny")
        assert "HYPRE_Graph" in text

    def test_run_topk(self):
        text = run_topk("tiny", k=5)
        assert "Top-5" in text
        assert "intensity" in text
        assert "pair index" not in text

    def test_run_topk_reuse_index_reports_stats(self):
        text = run_topk("tiny", k=5, reuse_index=True)
        assert "Top-5" in text
        assert "pair index" in text
        assert "pre-filtered" in text


class TestJsonOutput:
    def test_topk_json_is_machine_readable(self):
        payload = json.loads(run_topk("tiny", k=3, as_json=True))
        assert payload["k"] == 3
        assert payload["scale"] == "tiny"
        assert len(payload["results"]) == 3
        first = payload["results"][0]
        assert set(first) == {"pid", "intensity", "venue", "year", "title"}
        assert payload["index"] is None

    def test_topk_json_includes_index_stats_with_reuse(self):
        payload = json.loads(run_topk("tiny", k=3, reuse_index=True,
                                      as_json=True))
        index = payload["index"]
        assert index is not None
        assert index["pairs"] > 0
        assert index["refreshes"] >= 1

    def test_serve_replay_json_reports_both_arms(self):
        payload = json.loads(run_serve_replay(
            scale="tiny", users=8, requests=30, k=3, capacity=4,
            as_json=True))
        assert payload["serving"]["ops"] == 30
        assert payload["baseline"]["ops"] == 30
        assert payload["serving"]["sql_statements"] < \
            payload["baseline"]["sql_statements"]
        assert "sessions" in payload["server"]

    def test_serve_replay_json_without_baseline(self):
        payload = json.loads(run_serve_replay(
            scale="tiny", users=6, requests=20, k=3, capacity=4,
            baseline=False, as_json=True))
        assert payload["baseline"] is None
        assert payload["sharded"] is None and payload["cluster"] is None

    def test_serve_replay_json_reports_per_kind_mutation_counters(self):
        """The JSON report surfaces the server's per-kind mutation counters
        (inserts / deletes / tuple_updates), matching the replay arm."""
        payload = json.loads(run_serve_replay(
            scale="tiny", users=8, requests=40, k=3, capacity=4, seed=2,
            baseline=False, as_json=True))
        mutations = payload["mutations"]
        assert set(mutations) == {"inserts", "deletes", "tuple_updates"}
        assert mutations == {
            kind: payload["server"]["requests"][kind]
            for kind in ("inserts", "deletes", "tuple_updates")}
        assert mutations["inserts"] == payload["serving"]["inserts"]
        assert mutations["deletes"] == payload["serving"]["deletes"]
        assert mutations["tuple_updates"] == payload["serving"]["data_updates"]

    def test_serve_replay_json_with_sharded_arm(self):
        payload = json.loads(run_serve_replay(
            scale="tiny", users=8, requests=30, k=3, capacity=4, shards=2,
            as_json=True))
        assert payload["config"]["shards"] == 2
        sharded = payload["sharded"]
        assert sharded["label"] == "sharded-2"
        assert sharded["ops"] == 30
        # Identical schedule over an identical world: the cluster serves the
        # same request counts as the single-server arm.
        assert sharded["reads"] == payload["serving"]["reads"]
        cluster = payload["cluster"]
        assert cluster["shards"] == 2
        assert cluster["parallel_fanout"] is True
        assert len(cluster["per_shard"]) == 2
        assert 0.0 <= cluster["warm_rate"] <= 1.0

    def test_serve_replay_rejects_negative_shards(self):
        with pytest.raises(ValueError, match="--shards"):
            run_serve_replay(scale="tiny", users=4, requests=10, shards=-1)

    def test_serve_replay_repairs_by_default_and_disables_on_negative(self):
        """The default serving arm repairs answers in place; a negative
        --repair-delta restores the invalidate-and-recompute behaviour."""
        repaired = json.loads(run_serve_replay(
            scale="tiny", users=8, requests=40, k=3, capacity=4, seed=2,
            baseline=False, as_json=True))
        assert repaired["server"]["results"]["repairs"] > 0
        disabled = json.loads(run_serve_replay(
            scale="tiny", users=8, requests=40, k=3, capacity=4, seed=2,
            baseline=False, as_json=True, repair_delta=-1))
        assert disabled["server"]["results"]["repairs"] == 0
        assert (disabled["server"]["results"]["data_invalidations"]
                >= repaired["server"]["results"]["data_invalidations"])


class TestServeReplayText:
    def test_text_report_mentions_both_arms(self):
        text = run_serve_replay(scale="tiny", users=8, requests=30, k=3,
                                capacity=4)
        assert "serving" in text and "baseline" in text
        assert "SQL statements saved" in text
        assert "mutations:" in text and "in-place updates" in text

    def test_text_report_includes_sharded_arm_when_requested(self):
        text = run_serve_replay(scale="tiny", users=8, requests=30, k=3,
                                capacity=4, shards=2)
        assert "sharded-2" in text
        assert "cluster: 2 shards" in text and "warm-rate" in text

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_serve_replay(scale="galactic")


class TestLoad:
    def test_load_json_reports_slos_and_clean_audit(self):
        payload = json.loads(run_load(
            scale="tiny", users=8, threads=2, duration=0.4, k=3,
            audit_interval=0.2, as_json=True))
        run = payload["run"]
        assert run["mode"] == "closed"
        assert run["ops"] > 0 and run["throughput_ops_per_sec"] > 0
        latency = run["latency"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert run["audit"]["mismatches"] == 0 and run["errors"] == []
        assert payload["config"]["threads"] == 2

    def test_load_open_loop_with_shards(self):
        payload = json.loads(run_load(
            scale="tiny", users=8, threads=2, duration=0.4, qps=100.0,
            shards=2, k=3, audit_interval=0.2, as_json=True))
        run = payload["run"]
        assert run["mode"] == "open" and run["shards"] == 2
        assert len(run["per_shard_requests"]) == 2
        assert run["shard_skew"] >= 1.0

    def test_load_text_report_names_the_slos(self):
        text = run_load(scale="tiny", users=8, threads=2, duration=0.4,
                        k=3, audit_interval=0.2)
        assert "p50" in text and "p95" in text and "p99" in text
        assert "at saturation" in text
        assert "audit:" in text and "0 mismatches" in text

    def test_load_writes_a_valid_bench_document(self, tmp_path):
        from repro.loadgen import load_and_validate
        path = tmp_path / "BENCH_loadgen.json"
        run_load(scale="tiny", users=8, threads=2, duration=0.4, k=3,
                 audit_interval=0.2, output=str(path))
        document = load_and_validate(str(path))
        assert len(document["payload"]["runs"]) == 1

    def test_load_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            run_load(scale="galactic")

    def test_load_rejects_negative_shards(self):
        with pytest.raises(ValueError, match="--shards"):
            run_load(scale="tiny", shards=-1)

    def test_load_multiprocess_merges_and_validates(self, tmp_path):
        from repro.loadgen import load_and_validate
        path = tmp_path / "BENCH_loadgen.json"
        payload = json.loads(run_load(
            scale="tiny", users=8, threads=1, duration=0.3, k=3,
            audit_interval=0.2, processes=2, as_json=True,
            output=str(path)))
        run = payload["run"]
        assert run["processes"] == 2
        assert run["threads"] == 2  # one per process, summed by the merge
        assert run["ops"] > 0
        assert run["audit"]["mismatches"] == 0 and run["errors"] == []
        assert payload["config"]["processes"] == 2
        document = load_and_validate(str(path))
        assert document["payload"]["runs"][0]["processes"] == 2

    def test_load_multiprocess_text_names_the_processes(self):
        text = run_load(scale="tiny", users=8, threads=1, duration=0.3,
                        k=3, audit_interval=0.2, processes=2)
        assert "across 2 processes" in text

    def test_load_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="--processes"):
            run_load(scale="tiny", processes=0)

    def test_load_rejects_multiprocess_telemetry(self):
        with pytest.raises(ValueError, match="telemetry"):
            run_load(scale="tiny", processes=2, telemetry=True)


class TestMainEntryPoint:
    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        assert "table10" in capsys.readouterr().out

    def test_main_experiment(self, capsys):
        assert main(["experiment", "fig26_27", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "graph_count" in output

    def test_main_topk(self, capsys):
        assert main(["topk", "--scale", "tiny", "--k", "3"]) == 0
        assert "Top-3" in capsys.readouterr().out

    def test_main_topk_json(self, capsys):
        assert main(["topk", "--scale", "tiny", "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 3

    def test_main_serve_replay(self, capsys):
        assert main(["serve-replay", "--scale", "tiny", "--users", "6",
                     "--requests", "20", "--capacity", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["users"] == 6

    def test_main_load(self, capsys):
        assert main(["load", "--scale", "tiny", "--users", "8",
                     "--threads", "2", "--duration", "0.4", "--k", "3",
                     "--audit-interval", "0.2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"]["ops"] > 0
        assert payload["run"]["audit"]["mismatches"] == 0


class TestStats:
    def test_stats_json_snapshot_covers_every_layer(self):
        from repro.cli import run_stats
        from repro.telemetry import validate_snapshot
        document = json.loads(run_stats(scale="tiny", users=8, requests=30,
                                        k=3))
        assert validate_snapshot(document)
        layers = {name.split(".", 1)[0] for name in document["metrics"]}
        assert {"serving", "index", "backend", "concurrency",
                "telemetry"} <= layers
        assert document["traces"]["buffer"]["recorded"] > 0

    def test_stats_prometheus_exposition(self):
        from repro.cli import run_stats
        text = run_stats(scale="tiny", users=8, requests=30, k=3,
                         prometheus=True)
        assert "repro_serving_server_reads " in text
        assert "repro_concurrency_lock_server_acquisitions " in text
        assert text.endswith("\n")

    def test_stats_sharded_names_every_shard(self):
        from repro.cli import run_stats
        document = json.loads(run_stats(scale="tiny", users=8, requests=30,
                                        k=3, shards=2))
        metrics = document["metrics"]
        assert metrics["serving.cluster.shards"] == 2
        assert "concurrency.lock.shard0_server.acquisitions" in metrics
        assert "concurrency.lock.shard1_server.acquisitions" in metrics

    def test_main_stats(self, capsys):
        assert main(["stats", "--scale", "tiny", "--users", "8",
                     "--requests", "30", "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] >= 1

    def test_parser_rejects_json_with_prometheus(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--json", "--prometheus"])


class TestTelemetryFlags:
    def test_serve_replay_telemetry_json_section(self):
        payload = json.loads(run_serve_replay(
            scale="tiny", users=6, requests=20, capacity=4, baseline=False,
            as_json=True, telemetry=True))
        snapshot = payload["telemetry"]
        assert snapshot is not None
        assert snapshot["metrics"]["serving.server.reads"] > 0
        assert snapshot["traces"]["buffer"]["recorded"] > 0

    def test_serve_replay_text_mentions_telemetry(self):
        text = run_serve_replay(scale="tiny", users=6, requests=20,
                                capacity=4, baseline=False, telemetry=True)
        assert "telemetry:" in text and "traces recorded" in text

    def test_load_telemetry_carries_snapshot(self):
        payload = json.loads(run_load(
            scale="tiny", users=8, threads=2, duration=0.4, k=3,
            audit_interval=0.2, as_json=True, telemetry=True))
        snapshot = payload["run"]["telemetry"]
        assert snapshot["metrics"]["loadgen.audit.mismatches"] == 0
        assert snapshot["traces"]["buffer"]["recorded"] > 0
