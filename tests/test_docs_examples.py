"""Every fenced python block in ``docs/*.md`` must stay executable.

The docs checker used to cover only README.md; this module extends it to the
whole ``docs/`` suite (the SERVING tutorial, the INVALIDATION contract, and
anything added later — discovery is by glob, so new documents are covered
the moment they land).  Blocks run in order in one shared namespace per
document, exactly as a reader following the tutorial would execute them.
"""

from __future__ import annotations

import pytest

from mdblocks import REPO_ROOT, execute_python_blocks, fenced_blocks

DOCS_DIR = REPO_ROOT / "docs"
DOCS = sorted(DOCS_DIR.glob("*.md"))

#: Documents that are executable tutorials — they must contain python blocks
#: (plain prose/diagram documents like ARCHITECTURE.md are exempt).
TUTORIALS = ("SERVING.md", "INVALIDATION.md", "BACKENDS.md", "LOADGEN.md",
             "OBSERVABILITY.md", "WORKLOADS.md")


def test_docs_directory_has_documents():
    assert DOCS, "docs/ must contain markdown documents"


def test_expected_documents_present():
    names = {path.name for path in DOCS}
    assert {"ARCHITECTURE.md", *TUTORIALS} <= names


@pytest.mark.parametrize("name", TUTORIALS)
def test_tutorials_contain_executable_blocks(name):
    assert fenced_blocks(DOCS_DIR / name, "python"), (
        f"{name} must contain executable python examples")


@pytest.mark.parametrize("doc", DOCS, ids=[path.name for path in DOCS])
def test_docs_python_blocks_execute(doc):
    """Execute every python block of every docs/*.md, in document order."""
    execute_python_blocks(doc)
