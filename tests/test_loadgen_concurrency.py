"""Concurrency stress tests: the serving stack under real thread contention.

Three layers of proof, each bounded by an explicit deadline (threads are
daemons and joined with a timeout, so a deadlock fails the test in seconds
instead of hanging the suite — the repo has no pytest-timeout plugin):

* **mixed load through the harness** — :class:`repro.loadgen.LoadGenerator`
  drives reads + every mutation kind concurrently on both storage backends
  with the background equivalence auditor live; the run must finish clean;
* **readers vs writers, frozen-copy equivalence** — hand-rolled reader and
  writer threads race on one server while the main thread repeatedly
  quiesces traffic through a :class:`~repro.loadgen.TrafficGate` and
  recomputes every materialised answer from scratch on the quiesced
  (frozen) database: no torn read may survive a quiesce point;
* **cluster fan-out equivalence** — concurrent ``top_k`` calls against a
  ``parallel_fanout`` sharded cluster must return exactly the rankings a
  single serial server computes for the same world;

plus barrier-provoked regression tests for the invalidation races the
epoch guards in :class:`~repro.serving.results.ResultCache` and
:class:`~repro.index.count_cache.CountCache` exist to close: an
invalidation sweep landing *mid-computation* must prevent the stale answer
from being (re-)cached after the sweep.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.predicate import equals
from repro.index.count_cache import CountCache
from repro.loadgen import LoadConfig, LoadGenerator, LoadMix, TrafficGate
from repro.loadgen.workload import (
    DATA_UPDATE,
    DELETE,
    INSERT,
    READ,
    UPDATE,
    WorkerStream,
)
from repro.serving import ReplayConfig, ReplayDriver, ShardedTopKServer, TopKServer
from repro.serving.results import ResultCache
from repro.serving.server import fresh_top_k
from repro.workload.dblp import DblpConfig

#: Upper bound on any single concurrent phase; generous on purpose — it
#: only ever bites when something deadlocks.
DEADLINE_SECONDS = 60.0

DBLP = DblpConfig(n_papers=180, n_authors=80, n_venues=8, seed=11)
REPLAY = ReplayConfig(users=16, k=5, seed=31)


@pytest.fixture(params=("sqlite", "memory"))
def backend(request):
    return request.param


@pytest.fixture()
def world(backend):
    driver = ReplayDriver(REPLAY)
    db = driver.build_world(DBLP, backend=backend)
    yield db
    db.close()


def join_with_deadline(threads, timeout=DEADLINE_SECONDS):
    """Join daemon ``threads``; returns the names still alive at timeout."""
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(max(0.1, deadline - time.monotonic()))
    return [thread.name for thread in threads if thread.is_alive()]


def start_and_join(threads, timeout=DEADLINE_SECONDS):
    for thread in threads:
        thread.start()
    stuck = join_with_deadline(threads, timeout)
    assert not stuck, f"threads still running at the deadline: {stuck}"


def test_join_with_deadline_detects_a_hung_thread():
    """The suite's deadlock guard itself: a stuck thread is reported, the
    test process is not wedged (daemon threads die with the process)."""
    release = threading.Event()
    hung = threading.Thread(target=release.wait, name="hung", daemon=True)
    hung.start()
    assert join_with_deadline([hung], timeout=0.2) == ["hung"]
    release.set()
    assert join_with_deadline([hung], timeout=5.0) == []


# -- mixed load through the harness ------------------------------------------


def test_mixed_load_finishes_clean_under_contention(world):
    """Reads + all mutation kinds, 3 threads, auditor live: clean finish."""
    server = TopKServer(world, capacity=12)
    config = LoadConfig(threads=3, duration_seconds=1.0, seed=31,
                        mix=LoadMix(k=REPLAY.k), audit_interval=0.25,
                        audit_sample=6)
    outcome = {}

    def run():
        outcome["report"] = LoadGenerator(config).run(server)

    try:
        start_and_join([threading.Thread(target=run, name="loadgen-run",
                                         daemon=True)])
    finally:
        server.close()
    report = outcome["report"]
    assert report.clean, (report.errors, report.audit)
    assert report.ops > 0
    assert report.audit["audits"] >= 1
    # Every mutation kind actually ran against the server.
    for kind in (UPDATE, INSERT, DELETE, DATA_UPDATE):
        assert report.kind_counts[kind] > 0, f"no {kind} ops in the mix"
    assert report.kind_counts[READ] > 0


# -- readers vs writers: no torn reads ---------------------------------------


def _apply(server, op):
    if op.kind == READ:
        server.top_k(op.uid, op.k)
    elif op.kind == UPDATE:
        server.update_profile(op.uid, op.profile)
    elif op.kind == INSERT:
        server.insert_tuples(op.papers, op.paper_authors)
    elif op.kind == DELETE:
        server.delete_tuples(op.pids)
    else:
        server.update_tuples(op.papers)


def test_readers_and_writers_no_torn_reads(world):
    """2 writers + 2 readers race; every quiesce point must find every
    materialised ranking equal to a from-scratch recomputation on the
    frozen (quiesced) database."""
    server = TopKServer(world, capacity=12)
    uids = sorted(profile.uid for profile in world.read_profiles())
    venues, lo, hi = world.workload_shape()
    gate = TrafficGate()
    stop = threading.Event()
    errors = []

    def worker(stream):
        try:
            while not stop.is_set():
                op = stream.next_op()
                with gate.request():
                    _apply(server, op)
        except Exception as exc:
            errors.append(f"{stream.worker_id}: {type(exc).__name__}: {exc}")

    write_only = LoadMix(read_weight=0.0, update_weight=1.0,
                         insert_weight=1.0, delete_weight=0.5,
                         data_update_weight=0.5, k=REPLAY.k)
    read_only = LoadMix(read_weight=1.0, update_weight=0.0,
                        insert_weight=0.0, delete_weight=0.0,
                        data_update_weight=0.0, k=REPLAY.k)
    streams = [
        WorkerStream(worker_id, mix, uids, venues, lo, hi,
                     max_aid=world.max_author_id(),
                     pid_base=world.max_paper_id() + 1, seed=31)
        for worker_id, mix in enumerate([write_only, write_only,
                                         read_only, read_only])]
    threads = [threading.Thread(target=worker, args=(stream,),
                                name=f"rw-{stream.worker_id}", daemon=True)
               for stream in streams]
    for thread in threads:
        thread.start()

    torn = []
    try:
        deadline = time.monotonic() + 1.2
        quiesce_points = 0
        while time.monotonic() < deadline:
            time.sleep(0.15)
            with gate.quiesce():
                quiesce_points += 1
                for uid in server.results.cached_users():
                    entry = server.results.peek(uid, REPLAY.k)
                    if entry is None:
                        continue
                    fresh = fresh_top_k(world, uid, REPLAY.k)
                    if list(entry.ranking) != list(fresh):
                        torn.append((uid, list(entry.ranking), list(fresh)))
    finally:
        stop.set()
        stuck = join_with_deadline(threads)
        server.close()
    assert not stuck, f"reader/writer threads deadlocked: {stuck}"
    assert not errors, errors
    assert not torn, f"torn reads survived a quiesce point: {torn[:3]}"
    assert quiesce_points >= 2


# -- cluster fan-out equivalence ---------------------------------------------


def test_cluster_parallel_fanout_concurrent_topk_equivalence(backend):
    """Concurrent reads through a parallel-fan-out cluster == the serial
    single-server rankings for the same world."""
    driver = ReplayDriver(REPLAY)

    reference_db = driver.build_world(DBLP, backend=backend)
    single = TopKServer(reference_db, capacity=32)
    expected = {}
    uids = sorted(profile.uid for profile in reference_db.read_profiles())
    for uid in uids:
        expected[uid] = tuple(single.top_k(uid, REPLAY.k).ranking)
    single.close()
    reference_db.close()

    cluster_db = driver.build_world(DBLP, backend=backend)
    cluster = ShardedTopKServer(cluster_db, shards=3, capacity=32,
                                parallel_fanout=True)
    served = {}
    errors = []

    def reader(worker_id):
        try:
            # Each thread walks the uids from a different offset, so shards
            # field overlapping requests for the same uid concurrently.
            mine = {}
            for step in range(len(uids) * 2):
                uid = uids[(worker_id * 5 + step) % len(uids)]
                mine[uid] = tuple(cluster.top_k(uid, REPLAY.k).ranking)
            served[worker_id] = mine
        except Exception as exc:
            errors.append(f"reader {worker_id}: {type(exc).__name__}: {exc}")

    try:
        start_and_join([threading.Thread(target=reader, args=(worker_id,),
                                         name=f"cluster-reader-{worker_id}",
                                         daemon=True)
                        for worker_id in range(4)])
    finally:
        cluster.close()
        cluster_db.close()
    assert not errors, errors
    assert len(served) == 4
    for mine in served.values():
        for uid, ranking in mine.items():
            assert ranking == expected[uid], f"uid {uid} diverged"


# -- invalidation-race regressions -------------------------------------------


class TestInvalidationRaceRegression:
    """Mid-computation invalidation must never let a stale entry re-cache."""

    def test_result_cache_refuses_put_after_mid_compute_sweep(self):
        """Thread A snapshots the epoch and 'computes'; thread B runs an
        invalidation sweep in the window; A's put must be refused."""
        cache = ResultCache()
        computed = threading.Barrier(2, timeout=DEADLINE_SECONDS)
        swept = threading.Barrier(2, timeout=DEADLINE_SECONDS)
        outcome = {}

        def compute_and_put():
            epoch = cache.epoch  # snapshot before reading any data
            ranking = ((1, 0.9), (2, 0.5))  # "computed" from pre-sweep data
            computed.wait()  # hand the window to the invalidator...
            swept.wait()     # ...and resume only after the sweep ran
            outcome["entry"] = cache.put(7, 2, ranking, predicates=(),
                                         epoch=epoch)

        def invalidate():
            computed.wait()
            cache.invalidate_user(7)
            swept.wait()

        start_and_join([
            threading.Thread(target=compute_and_put, name="putter",
                             daemon=True),
            threading.Thread(target=invalidate, name="sweeper", daemon=True)])

        assert outcome["entry"] is None, "stale put was accepted"
        assert cache.get(7, 2) is None
        assert cache.stats()["stale_puts_rejected"] == 1

    def test_result_cache_put_without_race_is_accepted(self):
        cache = ResultCache()
        epoch = cache.epoch
        assert cache.put(7, 2, ((1, 0.9),), predicates=(),
                         epoch=epoch) is not None
        assert cache.peek(7, 2) is not None
        assert cache.stats()["stale_puts_rejected"] == 0

    def test_count_cache_does_not_memoise_across_invalidation(self):
        """The backend round-trip runs with the lock released; a sweep
        landing inside that window must keep the result out of the cache."""
        predicate = equals("venue", "VLDB")
        in_query = threading.Event()
        release_query = threading.Event()
        answers = iter([41, 42])

        class BlockingBackend:
            def count_matching(self, _predicate):
                in_query.set()
                assert release_query.wait(DEADLINE_SECONDS)
                return next(answers)

        cache = CountCache(BlockingBackend())
        outcome = {}

        def count():
            outcome["value"] = cache.count(predicate)

        counter = threading.Thread(target=count, name="counter", daemon=True)
        counter.start()
        assert in_query.wait(DEADLINE_SECONDS)
        # The relation changes while the count query is in flight.
        cache.invalidate(predicate)
        release_query.set()
        assert join_with_deadline([counter]) == []

        assert outcome["value"] == 41  # the caller still gets its answer...
        assert cache.peek(predicate) is None  # ...but it was not memoised
        release_query.set()
        assert cache.count(predicate) == 42  # a fresh query, not 41 replayed
        assert cache.misses == 2

    def test_count_cache_memoises_without_a_sweep(self):
        class CountingBackend:
            calls = 0

            def count_matching(self, _predicate):
                type(self).calls += 1
                return 17

        cache = CountCache(CountingBackend())
        predicate = equals("venue", "SIGMOD")
        assert cache.count(predicate) == 17
        assert cache.count(predicate) == 17
        assert CountingBackend.calls == 1
        assert cache.peek(predicate) == 17


# -- striping regressions ------------------------------------------------------


class TestStripedServing:
    """The striped lock discipline, provoked with barriers: distinct-stripe
    cold misses genuinely overlap, a data mutation landing mid-compute
    still hits the per-stripe epoch guard, and in-place repair sweeps
    never resurrect entries a mutation dropped."""

    def test_cold_misses_on_distinct_stripes_overlap(self, world):
        """Two users on different stripes rendezvous *inside* their cold
        computes — impossible under the old server-wide lock, where the
        second request queued until the first finished."""
        server = TopKServer(world, capacity=12)
        try:
            uids = sorted(profile.uid for profile in world.read_profiles())
            uid_a = uids[0]
            uid_b = next(uid for uid in uids
                         if server.stripe_of(uid) != server.stripe_of(uid_a))
            rendezvous = threading.Barrier(2, timeout=DEADLINE_SECONDS)
            original = server.sessions.get_or_create
            overlapped = []

            def meeting_point(uid):
                # Runs while the caller holds its stripe lock and the
                # gate's read side: both cold misses can only meet here if
                # neither server-level lock serialises them.
                if uid in (uid_a, uid_b):
                    rendezvous.wait()
                    overlapped.append(uid)
                return original(uid)

            server.sessions.get_or_create = meeting_point
            outcome, errors = {}, []

            def read(uid):
                try:
                    outcome[uid] = server.top_k(uid, REPLAY.k)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(f"{uid}: {type(exc).__name__}: {exc}")

            start_and_join([
                threading.Thread(target=read, args=(uid,), daemon=True,
                                 name=f"cold-{uid}")
                for uid in (uid_a, uid_b)])
            server.sessions.get_or_create = original
            # A BrokenBarrierError here means the computes serialised.
            assert not errors, errors
            assert sorted(overlapped) == sorted((uid_a, uid_b))
            for uid in (uid_a, uid_b):
                assert not outcome[uid].cache_hit
                assert list(outcome[uid].ranking) \
                    == fresh_top_k(world, uid, REPLAY.k)
        finally:
            server.close()

    def test_mutation_mid_compute_triggers_stale_put_refusal(self, world):
        """A data mutation sweeping between a cold compute and its put (the
        gate is released before the put) must see the put refused by the
        epoch guard — per stripe, with no server-wide lock to hide behind."""
        server = TopKServer(world, capacity=12)
        try:
            uid = sorted(profile.uid
                         for profile in world.read_profiles())[0]
            ready, proceed = threading.Event(), threading.Event()
            original_put = server.results.put

            def stalled_put(put_uid, k, *args, **kwargs):
                if put_uid == uid:
                    ready.set()
                    assert proceed.wait(DEADLINE_SECONDS)
                return original_put(put_uid, k, *args, **kwargs)

            server.results.put = stalled_put
            outcome = {}

            def read():
                outcome["result"] = server.top_k(uid, REPLAY.k)

            reader = threading.Thread(target=read, name="cold-reader",
                                      daemon=True)
            reader.start()
            assert ready.wait(DEADLINE_SECONDS)
            before = server.results.stats()["stale_puts_rejected"]
            # The reader holds its *stripe* but released the gate: the
            # mutation (gate.write) proceeds and bumps the epoch.
            pid = world.max_paper_id() + 1
            server.insert_tuples(
                [{"pid": pid, "title": "mid-compute insert",
                  "venue": "VLDB", "year": 2015, "aids": [1]}])
            proceed.set()
            assert join_with_deadline([reader]) == []
            server.results.put = original_put

            assert server.results.stats()["stale_puts_rejected"] == before + 1
            # The stale answer was served but never materialised...
            assert outcome["result"].cache_hit is False
            assert server.results.peek(uid, REPLAY.k) is None
            # ...and the next request computes (and caches) a fresh one.
            fresh = server.top_k(uid, REPLAY.k)
            assert not fresh.cache_hit
            assert list(fresh.ranking) == fresh_top_k(world, uid, REPLAY.k)
        finally:
            server.close()

    def test_repair_sweeps_never_resurrect_dropped_entries(self, world):
        """Deletes land while readers hammer every stripe; after the dust
        settles no cached ranking may contain a dropped paper, and every
        survivor must equal the from-scratch oracle."""
        server = TopKServer(world, capacity=32)
        try:
            uids = sorted(profile.uid for profile in world.read_profiles())
            for uid in uids:
                server.top_k(uid, REPLAY.k)
            dropped = set()
            stop = threading.Event()
            errors = []

            def hammer(worker):
                generator = random.Random(worker)
                try:
                    while not stop.is_set():
                        server.top_k(generator.choice(uids), REPLAY.k)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(f"{worker}: {type(exc).__name__}: {exc}")

            readers = [threading.Thread(target=hammer, args=(worker,),
                                        daemon=True, name=f"reader-{worker}")
                       for worker in range(3)]
            for thread in readers:
                thread.start()
            try:
                for _ in range(4):
                    victims = set()
                    for uid in uids:
                        entry = server.results.peek(uid, REPLAY.k)
                        if entry is not None and entry.ranking:
                            victims.add(entry.ranking[0][0])
                        if len(victims) >= 2:
                            break
                    victims -= dropped
                    if not victims:
                        break
                    server.delete_tuples(sorted(victims))
                    dropped |= victims
            finally:
                stop.set()
                assert join_with_deadline(readers) == []
            assert not errors, errors
            assert dropped, "no cached paper was ever deleted"

            for uid in uids:
                entry = server.results.peek(uid, REPLAY.k)
                if entry is None:
                    continue
                cached_pids = {pid for pid, _score in entry.ranking}
                assert not (cached_pids & dropped), (
                    f"uid {uid}: dropped papers resurrected: "
                    f"{sorted(cached_pids & dropped)}")
                assert list(entry.ranking) \
                    == fresh_top_k(world, uid, REPLAY.k)
        finally:
            server.close()
