"""Tests for the context-aware preference and group-profile extensions."""

from __future__ import annotations

import pytest

from repro.core.hypre import build_hypre_graph
from repro.core.preference import UserProfile
from repro.exceptions import PreferenceError, ProfileError
from repro.extensions.context import ALL, ContextState, ContextualProfile
from repro.extensions.groups import GroupProfile, merge_profiles


class TestContextState:
    def test_of_builds_sorted_tuple(self):
        state = ContextState.of(weather="good", company="friends")
        assert state.dimensions() == ("company", "weather")
        assert state.as_dict() == {"company": "friends", "weather": "good"}

    def test_specificity_counts_non_wildcards(self):
        assert ContextState.of(weather="good", occasion=ALL).specificity() == 1
        assert ContextState.of().specificity() == 0

    def test_covers_with_wildcards(self):
        general = ContextState.of(company="friends", weather=ALL)
        concrete = ContextState.of(company="friends", weather="good")
        assert general.covers(concrete)
        assert not concrete.covers(ContextState.of(company="friends", weather="bad"))

    def test_missing_dimension_treated_as_all(self):
        general = ContextState.of(company="friends")
        concrete = ContextState.of(company="friends", weather="good")
        assert general.covers(concrete)

    def test_empty_state_covers_everything(self):
        assert ContextState(()).covers(ContextState.of(weather="awful"))

    def test_str_rendering(self):
        assert "weather=good" in str(ContextState.of(weather="good"))


class TestContextualProfile:
    @pytest.fixture()
    def profile(self):
        """The Figure 2 style profile: preferences under nested contexts."""
        profile = ContextualProfile(uid=7)
        profile.add("genre = 'comedy'", 0.9, company="friends", weather="good")
        profile.add("genre = 'comedy'", 0.5, company="friends")
        profile.add("genre = 'comedy'", 0.2)                      # ALL contexts
        profile.add("genre = 'documentary'", 0.7, company="family")
        profile.add("activity = 'hiking'", 0.8, weather="good")
        return profile

    def test_len_and_contexts(self, profile):
        assert len(profile) == 5
        contexts = profile.contexts()
        assert contexts[0].specificity() >= contexts[-1].specificity()

    def test_most_specific_context_wins(self, profile):
        applicable = {pref.predicate_sql: pref.intensity
                      for pref in profile.applicable(company="friends", weather="good")}
        assert applicable["genre = 'comedy'"] == 0.9
        assert applicable["activity = 'hiking'"] == 0.8
        assert "genre = 'documentary'" not in applicable

    def test_fallback_to_general_context(self, profile):
        applicable = {pref.predicate_sql: pref.intensity
                      for pref in profile.applicable(company="friends", weather="bad")}
        assert applicable["genre = 'comedy'"] == 0.5
        assert "activity = 'hiking'" not in applicable

    def test_all_context_used_when_nothing_matches(self, profile):
        applicable = {pref.predicate_sql: pref.intensity
                      for pref in profile.applicable(company="colleagues", weather="bad")}
        assert applicable == {"genre = 'comedy'": 0.2}

    def test_scored_predicates_ordered(self, profile):
        pairs = profile.scored_predicates(company="friends", weather="good")
        intensities = [intensity for _, intensity in pairs]
        assert intensities == sorted(intensities, reverse=True)

    def test_to_profile_feeds_hypre_builder(self, profile):
        materialised = profile.to_profile(company="friends", weather="good")
        assert isinstance(materialised, UserProfile)
        hypre, _ = build_hypre_graph(materialised)
        assert len(hypre.user_node_ids(7)) == len(materialised.quantitative)

    def test_intensity_validated(self):
        with pytest.raises(PreferenceError):
            ContextualProfile(1).add("a = 1", 1.5)


class TestMergeProfiles:
    def _member(self, uid, venue_intensity, extra=None):
        profile = UserProfile(uid=uid)
        profile.add_quantitative("dblp.venue = 'VLDB'", venue_intensity)
        if extra:
            profile.add_quantitative(extra[0], extra[1])
        profile.add_qualitative("dblp.venue = 'VLDB'", "dblp.venue = 'PODS'", 0.2 * uid)
        return profile

    def test_average_aggregation(self):
        group = merge_profiles([self._member(1, 0.4), self._member(2, 0.8)], group_uid=100)
        shared = {pref.predicate_sql: pref.intensity for pref in group.quantitative}
        assert shared["dblp.venue = 'VLDB'"] == pytest.approx(0.6)

    def test_min_max_and_inflationary(self):
        members = [self._member(1, 0.4), self._member(2, 0.8)]
        assert merge_profiles(members, 100, strategy="min").quantitative[0].intensity == \
            pytest.approx(0.4)
        assert merge_profiles(members, 100, strategy="max").quantitative[0].intensity == \
            pytest.approx(0.8)
        inflationary = merge_profiles(members, 100, strategy="inflationary")
        assert inflationary.quantitative[0].intensity == pytest.approx(1 - 0.6 * 0.2)

    def test_weights_scale_members(self):
        members = [self._member(1, 0.4), self._member(2, 0.8)]
        weighted = merge_profiles(members, 100, weights={1: 0.5, 2: 1.0})
        assert weighted.quantitative[0].intensity == pytest.approx((0.2 + 0.8) / 2)

    def test_qualitative_keeps_strongest(self):
        group = merge_profiles([self._member(1, 0.4), self._member(2, 0.8)], 100)
        assert len(group.qualitative) == 1
        assert group.qualitative[0].intensity == pytest.approx(0.4)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProfileError):
            merge_profiles([self._member(1, 0.4)], 100, strategy="median")

    def test_empty_member_list_rejected(self):
        with pytest.raises(ProfileError):
            merge_profiles([], 100)

    def test_group_profile_feeds_hypre(self):
        members = [self._member(1, 0.4, extra=("dblp.venue = 'ICDE'", 0.3)),
                   self._member(2, 0.8)]
        group = merge_profiles(members, 100)
        hypre, _ = build_hypre_graph(group)
        assert len(hypre.user_node_ids(100)) >= 3


class TestGroupProfile:
    def _profile(self, uid, intensity):
        profile = UserProfile(uid=uid)
        profile.add_quantitative("dblp.venue = 'VLDB'", intensity)
        profile.add_quantitative(f"dblp_author.aid = {uid}", 0.5)
        return profile

    def test_membership_management(self):
        group = GroupProfile(group_uid=50)
        group.add_member(self._profile(1, 0.4))
        group.add_member(self._profile(2, 0.8), weight=2.0)
        assert len(group) == 2
        group.remove_member(1)
        assert len(group) == 1
        group.remove_member(42)  # no-op

    def test_invalid_weight_rejected(self):
        group = GroupProfile(group_uid=50)
        with pytest.raises(ProfileError):
            group.add_member(self._profile(1, 0.4), weight=0.0)

    def test_merged_requires_members(self):
        with pytest.raises(ProfileError):
            GroupProfile(group_uid=50).merged()

    def test_predicate_support_and_consensus(self):
        group = GroupProfile(group_uid=50)
        group.add_member(self._profile(1, 0.4))
        group.add_member(self._profile(2, 0.8))
        support = group.predicate_support()
        assert support["dblp.venue = 'VLDB'"] == 2
        assert support["dblp_author.aid = 1"] == 1
        assert group.consensus_predicates() == ["dblp.venue = 'VLDB'"]
        assert len(group.consensus_predicates(minimum_support=1)) == 3
        with pytest.raises(ProfileError):
            group.consensus_predicates(minimum_support=0)

    def test_disagreements_detects_sign_conflicts(self):
        group = GroupProfile(group_uid=50)
        liker = UserProfile(uid=1)
        liker.add_quantitative("dblp.venue = 'INFOCOM'", 0.6)
        hater = UserProfile(uid=2)
        hater.add_quantitative("dblp.venue = 'INFOCOM'", -0.9)
        group.add_member(liker)
        group.add_member(hater)
        rows = group.disagreements()
        assert rows == [("dblp.venue = 'INFOCOM'", -0.9, 0.6)]

    def test_merged_uses_weights(self):
        group = GroupProfile(group_uid=50)
        group.add_member(self._profile(1, 0.4), weight=1.0)
        group.add_member(self._profile(2, 0.8), weight=0.5)
        merged = group.merged()
        venue = next(pref for pref in merged.quantitative
                     if pref.predicate_sql == "dblp.venue = 'VLDB'")
        assert venue.intensity == pytest.approx((0.4 + 0.4) / 2)
