"""Differential tests: ``Condition.evaluate`` must agree with SQLite.

The whole selective-invalidation machinery rests on one soundness rule:
:func:`repro.index.selectivity.may_match_row` may only answer ``False`` when
the SQL engine provably cannot match the tuple.  Since ``may_match_row``
delegates to in-memory predicate evaluation, *evaluate disagreeing with
SQLite is an invalidation soundness bug* — a cache entry could be spared
for a tuple the database in fact matches.

These tests run the same predicate both ways over the canonical joined view
— ``SELECT ... FROM dblp JOIN dblp_author`` — and assert the matched pid
sets are identical, focusing on the two historically dangerous corners:

* **NULL-valued attributes** (SQL three-valued logic: a NULL operand never
  satisfies ``=``, ``!=``, ``<`` ... nor ``IN``);
* **mixed string/number comparisons** (SQLite applies the column's affinity
  to the literal: ``year = '2005'`` matches the integer 2005, ``venue = 100``
  only matches the text ``'100'``, and a non-numeric literal compared to a
  numeric column sorts after every number).
"""

from __future__ import annotations

import pytest

from repro.core.predicate import (
    Condition,
    equals,
    in_set,
    not_equals,
    parse_predicate,
)
from repro.index.selectivity import may_match_row
from repro.sqldb.database import Database
from repro.sqldb.query_builder import matching_paper_ids
from repro.sqldb.schema import BASE_FROM

#: (pid, title, venue, year, abstract) — venue '100' and NULL abstracts are
#: deliberate: they force the affinity and NULL corners.
PAPERS = (
    (1, "Alpha", "VLDB", 2005, "materialised views"),
    (2, "Beta", "SIGMOD", 2010, None),
    (3, "Gamma", "100", 1999, ""),
    (4, "Delta", "ICDE", 2005, None),
    (5, "Epsilon", "VLDB", 2012, "updates"),
    # Beyond-2**53 integer and SQLite's exponent rendering of 1e16.
    (6, "Zeta", "1.0e+16", 9007199254740993, "big"),
)

AUTHOR_LINKS = ((1, 1), (1, 2), (2, 1), (3, 2), (4, 3), (5, 3), (6, 1))

PREDICATES = [
    # NULL-valued attributes: NULL never satisfies any comparison.
    equals("abstract", ""),
    not_equals("abstract", ""),
    Condition("abstract", "!=", "updates"),
    in_set("abstract", [""]),
    in_set("abstract", ["updates", "materialised views"]),
    equals("title", None),
    not_equals("title", None),
    # Mixed string/number: numeric column vs. text literal.
    Condition("dblp.year", "=", "2005"),
    Condition("dblp.year", "!=", "2005"),
    Condition("dblp.year", ">=", "2010"),
    Condition("dblp.year", "<", "2005"),
    Condition("dblp.year", "IN", ("2005", 2012)),
    # Non-numeric literal vs. numeric column: text sorts after all numbers.
    Condition("dblp.year", "<", "abc"),
    Condition("dblp.year", ">", "abc"),
    Condition("dblp.year", "=", "abc"),
    # Strings Python's float() accepts but SQLite's affinity grammar does
    # not — they must stay TEXT (and so sort after every number).
    Condition("dblp.year", "<", "1_0"),
    Condition("dblp.year", "<", "nan"),
    Condition("dblp.year", ">=", "inf"),
    # ...while whitespace-padded numerics do coerce.
    Condition("dblp.year", "=", " 2005 "),
    # Integer text beyond 2**53: SQLite converts exactly, so evaluate must
    # not round through float.
    Condition("dblp.year", "=", "9007199254740993"),
    Condition("dblp.year", ">", "9007199254740992"),
    # SQLite renders the literal 1e16 as the text '1.0e+16'.
    Condition("venue", "=", 1e16),
    # Mixed string/number: text column vs. numeric literal.
    Condition("venue", "=", 100),
    Condition("venue", "!=", 100),
    Condition("venue", ">", 100),
    Condition("venue", "IN", (100, "VLDB")),
    # Plain composites over the same data, for completeness.
    parse_predicate("venue = 'VLDB' OR dblp.year >= 2010"),
    parse_predicate("venue = 'VLDB' AND dblp.year <= 2005"),
]


@pytest.fixture(scope="module")
def differential_db():
    db = Database(":memory:")
    db.executemany(
        "INSERT INTO dblp (pid, title, venue, year, abstract)"
        " VALUES (?, ?, ?, ?, ?)", PAPERS)
    db.executemany(
        "INSERT INTO dblp_author (pid, aid) VALUES (?, ?)", AUTHOR_LINKS)
    db.commit()
    yield db
    db.close()


def joined_rows(db):
    return db.query(
        "SELECT dblp.pid AS pid, title, venue, year, abstract, aid"
        f" FROM {BASE_FROM}")


@pytest.mark.parametrize(
    "predicate", PREDICATES, ids=[pred.to_sql() for pred in PREDICATES])
def test_evaluate_agrees_with_sqlite(differential_db, predicate):
    sql_pids = set(matching_paper_ids(differential_db, predicate))
    memory_pids = {row["pid"] for row in joined_rows(differential_db)
                   if predicate.evaluate(row)}
    assert memory_pids == sql_pids


@pytest.mark.parametrize(
    "predicate", PREDICATES, ids=[pred.to_sql() for pred in PREDICATES])
def test_may_match_row_never_spares_a_sql_match(differential_db, predicate):
    """The soundness corollary: every paper SQLite matches has at least one
    joined row the relevance test flags, so invalidation driven by
    ``may_match_row`` can never wrongly spare a cache entry."""
    sql_pids = set(matching_paper_ids(differential_db, predicate))
    flagged = {row["pid"] for row in joined_rows(differential_db)
               if may_match_row(predicate, row)}
    assert sql_pids <= flagged
