"""Tests for the update-aware materialised result cache."""

from __future__ import annotations

from repro.core.hypre.events import (
    EDGE_INSERTED,
    INTENSITY_CHANGED,
    NODE_INSERTED,
    GraphMutation,
)
from repro.core.predicate import parse_predicate
from repro.serving.results import ResultCache
from repro.sqldb.events import (
    TUPLES_DELETED,
    TUPLES_INSERTED,
    TUPLES_UPDATED,
    DataMutation,
)

VLDB = parse_predicate("dblp.venue = 'VLDB'")
ICDE = parse_predicate("dblp.venue = 'ICDE'")
RECENT = parse_predicate("dblp.year >= 2010")

VLDB_ROW = {"pid": 901, "title": "t", "venue": "VLDB", "year": 2005,
            "abstract": "", "aid": 3}


def insert(rows) -> DataMutation:
    return DataMutation(TUPLES_INSERTED, "dblp", rows=rows,
                        pids=[row["pid"] for row in rows])


def delete(old_rows) -> DataMutation:
    return DataMutation(TUPLES_DELETED, "dblp", old_rows=old_rows,
                        pids=[row["pid"] for row in old_rows])


def update(old_rows, new_rows) -> DataMutation:
    return DataMutation(TUPLES_UPDATED, "dblp", rows=new_rows,
                        old_rows=old_rows,
                        pids=[row["pid"] for row in old_rows])


class TestLookups:
    def test_hit_and_miss_accounting(self):
        cache = ResultCache()
        assert cache.get(1, 5) is None
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        entry = cache.get(1, 5)
        assert entry is not None and entry.ranking == ((10, 0.9),)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_keyed_by_uid_and_k(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        assert cache.peek(1, 10) is None
        assert cache.peek(2, 5) is None


class TestProfileInvalidation:
    def test_result_affecting_mutation_drops_only_that_user(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        cache.put(1, 10, [(10, 0.9)], [VLDB])
        cache.put(2, 5, [(11, 0.8)], [ICDE])
        cache.on_profile_mutation(GraphMutation(NODE_INSERTED, 1, "dblp.year >= 2000"))
        assert cache.peek(1, 5) is None and cache.peek(1, 10) is None
        assert cache.peek(2, 5) is not None
        assert cache.profile_invalidations == 2

    def test_intensity_change_invalidates(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        cache.on_profile_mutation(
            GraphMutation(INTENSITY_CHANGED, 1, VLDB.to_sql(), intensity=0.4))
        assert cache.peek(1, 5) is None

    def test_edge_insert_alone_is_ignored(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        cache.on_profile_mutation(GraphMutation(
            EDGE_INSERTED, 1, VLDB.to_sql(), other_predicate=ICDE.to_sql()))
        assert cache.peek(1, 5) is not None


class TestDataInvalidation:
    def test_insert_drops_only_matching_users(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])          # matches the new row
        cache.put(2, 5, [(11, 0.8)], [ICDE])          # provably unaffected
        cache.put(3, 5, [(12, 0.7)], [RECENT])        # 2005 < 2010: unaffected
        dropped = cache.on_data_mutation(insert([VLDB_ROW]))
        assert dropped == 1
        assert cache.peek(1, 5) is None
        assert cache.peek(2, 5) is not None
        assert cache.peek(3, 5) is not None
        assert cache.data_invalidations == 1
        assert cache.data_spared == 2

    def test_any_matching_predicate_invalidates(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [ICDE, RECENT])
        row = {**VLDB_ROW, "year": 2012}               # matches RECENT only
        assert cache.on_data_mutation(insert([row])) == 1

    def test_missing_attribute_is_conservative(self):
        cache = ResultCache()
        author_pred = parse_predicate("dblp_author.aid = 77")
        cache.put(1, 5, [(10, 0.9)], [author_pred])
        # A notification row without the aid column cannot prove the entry
        # fresh, so it must be dropped.
        row = {"pid": 902, "title": "t", "venue": "ICDE", "year": 2001,
               "abstract": ""}
        assert cache.on_data_mutation(insert([row])) == 1

    def test_delete_drops_only_users_matching_the_pre_image(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])          # matched the old row
        cache.put(2, 5, [(11, 0.8)], [ICDE])          # provably unaffected
        dropped = cache.on_data_mutation(delete([VLDB_ROW]))
        assert dropped == 1
        assert cache.peek(1, 5) is None
        assert cache.peek(2, 5) is not None
        assert cache.data_spared == 1

    def test_update_drops_users_matching_either_image(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])          # matches the pre-image
        cache.put(2, 5, [(11, 0.8)], [ICDE])          # matches the post-image
        cache.put(3, 5, [(12, 0.7)], [RECENT])        # matches neither
        moved = {**VLDB_ROW, "venue": "ICDE"}
        dropped = cache.on_data_mutation(update([VLDB_ROW], [moved]))
        assert dropped == 2
        assert cache.peek(1, 5) is None
        assert cache.peek(2, 5) is None
        assert cache.peek(3, 5) is not None

    def test_clear_resets_everything(self):
        cache = ResultCache()
        cache.put(1, 5, [(10, 0.9)], [VLDB])
        cache.get(1, 5)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_cached_users_lists_distinct_uids(self):
        cache = ResultCache()
        cache.put(2, 5, [(10, 0.9)], [VLDB])
        cache.put(1, 5, [(11, 0.8)], [ICDE])
        cache.put(1, 10, [(11, 0.8)], [ICDE])
        assert cache.cached_users() == [1, 2]
