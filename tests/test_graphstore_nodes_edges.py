"""Unit tests for graph store node and edge records."""

from __future__ import annotations

import pytest

from repro.graphstore.edge import CYCLE, DISCARD, HYPRE_EDGE_TYPES, PREFERS, Edge
from repro.graphstore.node import Node, make_node, node_sort_key


class TestNode:
    def test_basic_construction(self):
        node = make_node(1, {"uid": 2, "intensity": 0.5}, labels=("uidIndex",))
        assert node.node_id == 1
        assert node["uid"] == 2
        assert node.get("intensity") == 0.5
        assert node.has_label("uidIndex")

    def test_labels_are_frozenset(self):
        node = Node(node_id=0, properties={}, labels={"a", "b"})
        assert isinstance(node.labels, frozenset)
        assert node.labels == frozenset({"a", "b"})

    def test_get_missing_returns_default(self):
        node = make_node(0)
        assert node.get("missing") is None
        assert node.get("missing", 7) == 7

    def test_contains_checks_properties(self):
        node = make_node(0, {"uid": 1})
        assert "uid" in node
        assert "intensity" not in node

    def test_getitem_raises_on_missing(self):
        node = make_node(0, {"uid": 1})
        with pytest.raises(KeyError):
            node["nope"]

    def test_with_updates_returns_new_node(self):
        node = make_node(3, {"uid": 1, "intensity": 0.2})
        updated = node.with_updates({"intensity": 0.9, "extra": "x"})
        assert updated.node_id == 3
        assert updated["intensity"] == 0.9
        assert updated["extra"] == "x"
        assert node["intensity"] == 0.2  # original untouched

    def test_with_labels_adds_labels(self):
        node = make_node(0, labels=("a",))
        updated = node.with_labels(["b", "c"])
        assert updated.labels == frozenset({"a", "b", "c"})
        assert node.labels == frozenset({"a"})

    def test_roundtrip_dict(self):
        node = make_node(5, {"predicate": "venue = 'VLDB'", "uid": 9}, labels=("uidIndex",))
        restored = Node.from_dict(node.to_dict())
        assert restored.node_id == node.node_id
        assert restored.properties == node.properties
        assert restored.labels == node.labels

    def test_sort_key_places_missing_last(self):
        with_value = make_node(0, {"intensity": 0.5})
        without = make_node(1, {})
        keys = sorted([node_sort_key(without, "intensity"),
                       node_sort_key(with_value, "intensity")])
        assert keys[0][0] is False  # node with a value sorts first

    def test_sort_key_descending_negates_numbers(self):
        low = make_node(0, {"intensity": 0.1})
        high = make_node(1, {"intensity": 0.9})
        assert node_sort_key(high, "intensity", descending=True) < node_sort_key(
            low, "intensity", descending=True)


class TestEdge:
    def test_basic_construction(self):
        edge = Edge(edge_id=0, source=1, target=2, rel_type=PREFERS,
                    properties={"intensity": 0.3})
        assert edge["intensity"] == 0.3
        assert edge.get("missing") is None
        assert not edge.is_self_loop()

    def test_self_loop_detection(self):
        edge = Edge(edge_id=0, source=4, target=4, rel_type=PREFERS)
        assert edge.is_self_loop()

    def test_roundtrip_dict(self):
        edge = Edge(edge_id=7, source=1, target=2, rel_type=DISCARD,
                    properties={"intensity": 0.25})
        restored = Edge.from_dict(edge.to_dict())
        assert restored == edge

    def test_hypre_edge_types_are_distinct(self):
        assert len(set(HYPRE_EDGE_TYPES)) == 3
        assert PREFERS in HYPRE_EDGE_TYPES
        assert CYCLE in HYPRE_EDGE_TYPES
        assert DISCARD in HYPRE_EDGE_TYPES
