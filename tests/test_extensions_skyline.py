"""Tests for attribute-based preferences and skyline queries."""

from __future__ import annotations

import pytest

from repro.exceptions import PreferenceError
from repro.extensions.skyline import (
    MAX,
    MIN,
    AttributePreference,
    dominates,
    order_by_clause,
    prioritized_skyline,
    rank_by_weighted_score,
    skyline,
)

#: The paper's motivating example: cheap hotels close to the beach.
HOTELS = [
    {"name": "Budget Inn", "price": 60, "distance": 2000},
    {"name": "Beach Hut", "price": 120, "distance": 100},
    {"name": "Fair Deal", "price": 80, "distance": 800},
    {"name": "Overpriced & Far", "price": 200, "distance": 2500},
    {"name": "Perfect", "price": 60, "distance": 100},
]

PRICE = AttributePreference("price", MIN, priority=0)
DISTANCE = AttributePreference("distance", MIN, priority=1)


class TestAttributePreference:
    def test_direction_validation(self):
        with pytest.raises(PreferenceError):
            AttributePreference("price", "median")

    def test_weight_validation(self):
        with pytest.raises(PreferenceError):
            AttributePreference("price", MIN, weight=0)

    def test_better_and_at_least_as_good(self):
        assert PRICE.better(50, 80)
        assert not PRICE.better(80, 50)
        assert PRICE.at_least_as_good(50, 50)
        rating = AttributePreference("rating", MAX)
        assert rating.better(5, 3)
        assert not rating.better(3, 5)

    def test_missing_values_never_better(self):
        assert not PRICE.better(None, 10)
        assert not PRICE.better(10, None)
        assert PRICE.at_least_as_good(None, None)

    def test_sort_key_orders_best_first(self):
        rows = sorted(HOTELS, key=PRICE.sort_key)
        assert rows[0]["price"] == 60
        rating = AttributePreference("price", MAX)
        rows = sorted(HOTELS, key=rating.sort_key)
        assert rows[0]["price"] == 200


class TestDominanceAndSkyline:
    def test_dominates(self):
        perfect = HOTELS[4]
        overpriced = HOTELS[3]
        assert dominates(perfect, overpriced, [PRICE, DISTANCE])
        assert not dominates(overpriced, perfect, [PRICE, DISTANCE])

    def test_dominates_requires_strict_improvement(self):
        a = {"price": 50, "distance": 100}
        b = {"price": 50, "distance": 100}
        assert not dominates(a, b, [PRICE, DISTANCE])

    def test_dominates_requires_preferences(self):
        with pytest.raises(PreferenceError):
            dominates(HOTELS[0], HOTELS[1], [])

    def test_skyline_contents(self):
        names = {row["name"] for row in skyline(HOTELS, [PRICE, DISTANCE])}
        # "Perfect" dominates everything except nothing dominates it; the
        # dominated hotels must be excluded.
        assert "Perfect" in names
        assert "Overpriced & Far" not in names
        assert "Budget Inn" not in names  # dominated by Perfect (same price, closer)
        assert "Beach Hut" not in names   # dominated by Perfect (same distance, cheaper)

    def test_skyline_of_incomparable_rows_keeps_all(self):
        rows = [{"price": 50, "distance": 900}, {"price": 90, "distance": 100}]
        assert len(skyline(rows, [PRICE, DISTANCE])) == 2

    def test_skyline_empty_input(self):
        assert skyline([], [PRICE, DISTANCE]) == []


class TestPrioritizedAndWeighted:
    def test_prioritized_skyline_price_first(self):
        ordered = prioritized_skyline(HOTELS, [PRICE, DISTANCE])
        assert ordered[0]["name"] == "Perfect"       # cheapest, then closest
        assert ordered[1]["name"] == "Budget Inn"    # cheapest, further away
        assert ordered[-1]["name"] == "Overpriced & Far"

    def test_prioritized_skyline_distance_first(self):
        ordered = prioritized_skyline(
            HOTELS,
            [AttributePreference("distance", MIN, priority=0),
             AttributePreference("price", MIN, priority=1)])
        assert ordered[0]["name"] == "Perfect"
        assert ordered[1]["name"] == "Beach Hut"

    def test_prioritized_requires_preferences(self):
        with pytest.raises(PreferenceError):
            prioritized_skyline(HOTELS, [])

    def test_weighted_ranking_best_row_wins(self):
        ranked = rank_by_weighted_score(HOTELS, [PRICE, DISTANCE])
        assert ranked[0][0]["name"] == "Perfect"
        assert ranked[0][1] == pytest.approx(1.0)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_weighted_ranking_top_k(self):
        ranked = rank_by_weighted_score(HOTELS, [PRICE], top_k=2)
        assert len(ranked) == 2

    def test_weighted_ranking_handles_missing_values(self):
        rows = HOTELS + [{"name": "No price", "distance": 50}]
        ranked = rank_by_weighted_score(rows, [PRICE, DISTANCE])
        assert len(ranked) == len(rows)

    def test_weighted_ranking_constant_attribute(self):
        rows = [{"price": 10}, {"price": 10}]
        ranked = rank_by_weighted_score(rows, [PRICE])
        assert all(score == pytest.approx(1.0) for _, score in ranked)

    def test_weighted_ranking_empty(self):
        assert rank_by_weighted_score([], [PRICE]) == []
        with pytest.raises(PreferenceError):
            rank_by_weighted_score(HOTELS, [])


class TestOrderByClause:
    def test_translation(self):
        clause = order_by_clause([DISTANCE, PRICE])
        # priority decides the order: price (0) before distance (1).
        assert clause == "price ASC, distance ASC"

    def test_max_maps_to_desc(self):
        clause = order_by_clause([AttributePreference("rating", MAX)])
        assert clause == "rating DESC"

    def test_requires_preferences(self):
        with pytest.raises(PreferenceError):
            order_by_clause([])

    def test_clause_usable_in_sql(self, tiny_db):
        clause = order_by_clause([AttributePreference("dblp.year", MAX)])
        rows = tiny_db.query(f"SELECT pid, year FROM dblp ORDER BY {clause} LIMIT 5")
        years = [row["year"] for row in rows]
        assert years == sorted(years, reverse=True)
