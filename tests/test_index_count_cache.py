"""Tests for the shared count cache and the batched counting SQL."""

from __future__ import annotations

import threading

import pytest

from repro.algorithms.base import PreferenceQueryRunner
from repro.core.predicate import parse_predicate
from repro.index import CountCache
from repro.sqldb.query_builder import (
    batched_count_query,
    count_matching_papers,
    count_matching_papers_many,
)
from repro.exceptions import QueryBuildError


PREDICATES = [
    "dblp.year >= 2005",
    "dblp.year < 2000",
    "dblp.venue = 'VLDB'",
    "dblp.venue = 'SIGMOD'",
    "dblp.year >= 2005 AND dblp.venue = 'VLDB'",
]


class TestBatchedCountQuery:
    def test_batched_matches_individual_counts(self, tiny_db):
        expected = [count_matching_papers(tiny_db, parse_predicate(sql))
                    for sql in PREDICATES]
        got = count_matching_papers_many(
            tiny_db, [parse_predicate(sql) for sql in PREDICATES])
        assert got == expected

    def test_one_statement_per_chunk(self, tiny_db):
        before = tiny_db.statements_executed
        count_matching_papers_many(
            tiny_db, [parse_predicate(sql) for sql in PREDICATES], chunk_size=2)
        # 5 predicates at chunk size 2 -> ceil(5/2) = 3 statements.
        assert tiny_db.statements_executed - before == 3

    def test_union_all_shape(self):
        sql = batched_count_query(["dblp.year >= 2005", "dblp.venue = 'VLDB'"])
        assert sql.count("UNION ALL") == 1
        assert "0 AS ord" in sql and "1 AS ord" in sql

    def test_empty_batch_rejected(self):
        with pytest.raises(QueryBuildError):
            batched_count_query([])


class TestCountCache:
    def test_count_is_memoised(self, tiny_db):
        cache = CountCache(tiny_db)
        predicate = parse_predicate("dblp.year >= 2005")
        first = cache.count(predicate)
        assert cache.misses == 1
        assert cache.count(predicate) == first
        assert cache.misses == 1
        assert cache.hits == 1

    def test_count_many_single_round_trip(self, tiny_db):
        cache = CountCache(tiny_db)
        before = tiny_db.statements_executed
        values = cache.count_many([parse_predicate(sql) for sql in PREDICATES])
        assert tiny_db.statements_executed - before == 1
        assert cache.statements == 1
        assert values == [count_matching_papers(tiny_db, parse_predicate(sql))
                          for sql in PREDICATES]

    def test_count_many_serves_cached_entries(self, tiny_db):
        cache = CountCache(tiny_db)
        cache.count(parse_predicate(PREDICATES[0]))
        misses_before = cache.misses
        cache.count_many([parse_predicate(sql) for sql in PREDICATES])
        # Only the four uncached predicates were counted.
        assert cache.misses - misses_before == len(PREDICATES) - 1

    def test_count_many_deduplicates_batch(self, tiny_db):
        cache = CountCache(tiny_db)
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        values = cache.count_many([predicate, predicate, predicate])
        assert len(set(values)) == 1
        assert cache.misses == 1
        # Duplicate occurrences are hits: hits + misses == lookups.
        assert cache.hits == 2

    def test_seed_and_peek(self, tiny_db):
        cache = CountCache(tiny_db)
        predicate = parse_predicate("dblp.venue = 'NOWHERE'")
        assert cache.peek(predicate) is None
        cache.seed(predicate, 0)
        assert cache.peek(predicate) == 0
        assert cache.count(predicate) == 0
        assert cache.misses == 0

    def test_invalidate_forces_recount(self, tiny_db):
        cache = CountCache(tiny_db)
        predicate = parse_predicate("dblp.year >= 2005")
        cache.count(predicate)
        cache.invalidate(predicate)
        cache.count(predicate)
        assert cache.misses == 2

    def test_invalidate_attribute_targets_only_its_predicates(self, tiny_db):
        cache = CountCache(tiny_db)
        year = parse_predicate("dblp.year >= 2005")
        venue = parse_predicate("dblp.venue = 'VLDB'")
        cache.count(year)
        cache.count(venue)
        dropped = cache.invalidate_attribute("dblp.year")
        assert dropped == 1
        assert cache.peek(year) is None
        assert cache.peek(venue) is not None

    def test_invalidate_attribute_normalises_qualified_names(self, tiny_db):
        """A bare name must drop qualified predicates and vice versa —
        otherwise a stale count survives on a spelling technicality."""
        cache = CountCache(tiny_db)
        qualified = parse_predicate("dblp.venue = 'VLDB'")
        bare = parse_predicate("venue = 'ICDE'")
        other = parse_predicate("dblp.year >= 2005")
        cache.count(qualified)
        cache.count(bare)
        cache.count(other)
        assert cache.invalidate_attribute("venue") == 2
        assert cache.peek(qualified) is None
        assert cache.peek(bare) is None
        assert cache.peek(other) is not None
        cache.count(qualified)
        cache.count(bare)
        assert cache.invalidate_attribute("dblp.venue") == 2

    def test_clear_resets_statistics(self, tiny_db):
        cache = CountCache(tiny_db)
        cache.count(parse_predicate("dblp.year >= 2005"))
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.statements) == (0, 0, 0)


class TestInvalidateMatching:
    def test_drops_only_entries_the_rows_may_match(self, tiny_db):
        cache = CountCache(tiny_db)
        vldb = parse_predicate("dblp.venue = 'VLDB'")
        icde = parse_predicate("dblp.venue = 'ICDE'")
        recent = parse_predicate("dblp.year >= 2010")
        cache.count_many([vldb, icde, recent])
        row = {"pid": 901, "title": "t", "venue": "VLDB", "year": 2003,
               "abstract": "", "aid": 1}
        dropped = cache.invalidate_matching([row])
        assert dropped == 1
        assert cache.peek(vldb) is None
        assert cache.peek(icde) is not None
        assert cache.peek(recent) is not None

    def test_missing_attribute_invalidates_conservatively(self, tiny_db):
        cache = CountCache(tiny_db)
        author = parse_predicate("dblp_author.aid = 5")
        cache.count(author)
        row = {"pid": 902, "venue": "VLDB", "year": 2003}  # no aid column
        assert cache.invalidate_matching([row]) == 1
        assert cache.peek(author) is None


class TestConcurrentAccess:
    def test_concurrent_count_many_never_double_executes(self, tiny_db):
        """Many sessions batch-counting the same predicates concurrently must
        produce exact statistics: each unique predicate is a miss exactly
        once, every other lookup is a hit, and the statement counters of the
        cache and the database agree."""
        cache = CountCache(tiny_db)
        predicates = [parse_predicate(sql) for sql in PREDICATES]
        expected = [count_matching_papers(tiny_db, predicate)
                    for predicate in predicates]
        statements_before = tiny_db.statements_executed
        threads_n, rounds = 8, 5
        errors = []
        barrier = threading.Barrier(threads_n)

        def worker() -> None:
            try:
                barrier.wait()
                for _ in range(rounds):
                    values = cache.count_many(predicates)
                    if values != expected:
                        raise AssertionError(f"wrong counts: {values}")
            except Exception as exc:  # pragma: no cover - failure signal
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        lookups = threads_n * rounds * len(PREDICATES)
        # Exactly one miss per unique predicate, one batched statement total,
        # and hits + misses account for every lookup — no lost updates.
        assert cache.misses == len(PREDICATES)
        assert cache.statements == 1
        assert cache.hits == lookups - len(PREDICATES)
        assert tiny_db.statements_executed - statements_before == 1

    def test_concurrent_single_counts_memoise_once(self, tiny_db):
        cache = CountCache(tiny_db)
        predicate = parse_predicate("dblp.venue = 'SIGMOD' AND dblp.year >= 2001")
        results = []

        def worker() -> None:
            results.append(cache.count(predicate))

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1
        assert cache.misses == 1
        assert cache.hits == 11


class TestSharedCache:
    def test_runners_share_one_cache(self, tiny_db):
        cache = CountCache(tiny_db)
        first = PreferenceQueryRunner(tiny_db, count_cache=cache)
        second = PreferenceQueryRunner(tiny_db, count_cache=cache)
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        first.count(predicate)
        misses = cache.misses
        # The second runner is served from the shared store.
        second.count(predicate)
        assert cache.misses == misses
        assert second.queries_executed == 0

    def test_runner_clear_spares_shared_cache(self, tiny_db):
        cache = CountCache(tiny_db)
        runner = PreferenceQueryRunner(tiny_db, count_cache=cache)
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        runner.count(predicate)
        runner.clear()
        # A shared cache holds state other consumers rely on — the runner
        # only drops what it owns.
        assert cache.peek(predicate) is not None
        assert runner.queries_executed == 0

    def test_runner_clear_drops_owned_cache(self, tiny_db):
        runner = PreferenceQueryRunner(tiny_db)
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        runner.count(predicate)
        runner.clear()
        assert runner.count_cache.peek(predicate) is None

    def test_runner_count_many_batches(self, tiny_db):
        runner = PreferenceQueryRunner(tiny_db)
        before = tiny_db.statements_executed
        values = runner.count_many([parse_predicate(sql) for sql in PREDICATES])
        assert len(values) == len(PREDICATES)
        assert tiny_db.statements_executed - before == 1
        assert runner.queries_executed == len(PREDICATES)
