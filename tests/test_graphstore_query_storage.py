"""Unit tests for the graph query layer and JSON persistence."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphPersistenceError, GraphQueryError
from repro.graphstore import (
    CYCLE,
    PREFERS,
    ExpandQuery,
    GraphStore,
    NodeQuery,
    PropertyGraph,
    load_graph,
    save_graph,
)


@pytest.fixture()
def preference_graph():
    """A small HYPRE-flavoured graph: 4 nodes for uid=2, 1 node for uid=3."""
    graph = PropertyGraph()
    graph.create_index("uidIndex", "uid")
    payload = [
        {"uid": 2, "predicate": "venue = 'INFOCOM'", "intensity": 0.23},
        {"uid": 2, "predicate": "venue = 'PODS'", "intensity": 0.14},
        {"uid": 2, "predicate": "aid = 128", "intensity": 0.19},
        {"uid": 2, "predicate": "aid = 116", "intensity": -0.4},
        {"uid": 3, "predicate": "venue = 'VLDB'", "intensity": 0.9},
    ]
    nodes = graph.add_nodes_batch(payload, labels=("uidIndex",))
    graph.add_edge(nodes[0].node_id, nodes[1].node_id, PREFERS, {"intensity": 0.1})
    graph.add_edge(nodes[2].node_id, nodes[3].node_id, CYCLE, {"intensity": 0.2})
    return graph, nodes


class TestNodeQuery:
    def test_filter_by_uid(self, preference_graph):
        graph, _ = preference_graph
        rows = NodeQuery(graph).with_label("uidIndex").where("uid", "=", 2).run()
        assert len(rows) == 4

    def test_order_by_intensity_descending(self, preference_graph):
        graph, _ = preference_graph
        rows = (NodeQuery(graph)
                .with_label("uidIndex")
                .where("uid", "=", 2)
                .order_by("intensity", descending=True)
                .returning("predicate", "intensity")
                .run())
        intensities = [row["intensity"] for row in rows]
        assert intensities == sorted(intensities, reverse=True)

    def test_positive_intensity_filter(self, preference_graph):
        graph, _ = preference_graph
        count = (NodeQuery(graph)
                 .with_label("uidIndex")
                 .where("uid", "=", 2)
                 .where("intensity", ">", 0.0)
                 .count())
        assert count == 3

    def test_limit_and_skip(self, preference_graph):
        graph, _ = preference_graph
        query = (NodeQuery(graph).with_label("uidIndex").where("uid", "=", 2)
                 .order_by("intensity", descending=True))
        top = query.limit(2).nodes()
        assert len(top) == 2
        rest = (NodeQuery(graph).with_label("uidIndex").where("uid", "=", 2)
                .order_by("intensity", descending=True).skip(2).nodes())
        assert len(rest) == 2
        assert {node.node_id for node in top}.isdisjoint(
            {node.node_id for node in rest})

    def test_in_operator(self, preference_graph):
        graph, _ = preference_graph
        rows = (NodeQuery(graph).with_label("uidIndex")
                .where("uid", "in", [2, 3]).run())
        assert len(rows) == 5

    def test_unsupported_operator_raises(self, preference_graph):
        graph, _ = preference_graph
        with pytest.raises(GraphQueryError):
            NodeQuery(graph).where("uid", "~", 2)

    def test_negative_limit_raises(self, preference_graph):
        graph, _ = preference_graph
        with pytest.raises(GraphQueryError):
            NodeQuery(graph).limit(-1)

    def test_projection_returns_requested_keys_only(self, preference_graph):
        graph, _ = preference_graph
        rows = (NodeQuery(graph).with_label("uidIndex").where("uid", "=", 3)
                .returning("predicate").run())
        assert rows == [{"predicate": "venue = 'VLDB'"}]


class TestExpandQuery:
    def test_expand_prefers_only(self, preference_graph):
        graph, nodes = preference_graph
        expander = ExpandQuery(graph, rel_types=(PREFERS,))
        pairs = expander.expand(nodes[0].node_id)
        assert len(pairs) == 1
        edge, target = pairs[0]
        assert edge.rel_type == PREFERS
        assert target.node_id == nodes[1].node_id

    def test_expand_incoming(self, preference_graph):
        graph, nodes = preference_graph
        expander = ExpandQuery(graph, rel_types=(PREFERS,))
        pairs = expander.expand_incoming(nodes[1].node_id)
        assert [source.node_id for _, source in pairs] == [nodes[0].node_id]

    def test_pairs_lists_all_edges_of_type(self, preference_graph):
        graph, nodes = preference_graph
        assert ExpandQuery(graph, rel_types=(PREFERS,)).pairs() == [
            (nodes[0].node_id, nodes[1].node_id)]
        assert ExpandQuery(graph, rel_types=(CYCLE,)).pairs() == [
            (nodes[2].node_id, nodes[3].node_id)]
        assert len(ExpandQuery(graph).pairs()) == 2


class TestPersistence:
    def test_save_and_load_roundtrip(self, preference_graph, tmp_path):
        graph, nodes = preference_graph
        path = tmp_path / "prefs.json"
        save_graph(graph, path)
        restored = load_graph(path)
        assert restored.node_count() == graph.node_count()
        assert restored.edge_count() == graph.edge_count()
        assert restored.find_by_index("uidIndex", "uid", 2)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphPersistenceError):
            load_graph(tmp_path / "missing.json")

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphPersistenceError):
            load_graph(path)

    def test_graph_store_catalogue(self, preference_graph, tmp_path):
        graph, _ = preference_graph
        store = GraphStore(tmp_path / "graphs")
        store.save("profiles", graph)
        assert store.exists("profiles")
        assert store.list() == ["profiles"]
        assert len(store) == 1
        restored = store.load("profiles")
        assert restored.node_count() == graph.node_count()
        assert store.sizes()["profiles"] > 0
        store.delete("profiles")
        assert store.list() == []

    def test_graph_store_rejects_bad_names(self, tmp_path):
        store = GraphStore(tmp_path)
        with pytest.raises(GraphPersistenceError):
            store.save("../escape", PropertyGraph())

    def test_graph_store_load_missing_raises(self, tmp_path):
        store = GraphStore(tmp_path)
        with pytest.raises(GraphPersistenceError):
            store.load("nothing")
