"""Tests for preference-aware query enhancement (Section 4.6)."""

from __future__ import annotations

import pytest

from repro.core.intensity import f_and, f_or
from repro.exceptions import EmptyPreferenceListError
from repro.sqldb import (
    conjunctive_clause,
    covered_paper_ids,
    disjunctive_clause,
    enhance_query,
    group_by_attribute,
    matching_paper_ids,
    mixed_clause,
    rank_tuples,
)

#: The user profile of Table 7 (uid=2): two venue and two author preferences.
TABLE7_PREFERENCES = [
    ("dblp.venue = 'INFOCOM'", 0.23),
    ("dblp.venue = 'PODS'", 0.14),
    ("dblp_author.aid = 128", 0.19),
    ("dblp_author.aid = 116", 0.14),
]


class TestClauseConstruction:
    def test_group_by_attribute(self):
        groups = group_by_attribute(TABLE7_PREFERENCES)
        assert len(groups) == 2
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [2, 2]

    def test_mixed_clause_matches_paper_rewrite(self):
        """Section 4.6: same attribute OR-ed, different attributes AND-ed."""
        predicate, intensity = mixed_clause(TABLE7_PREFERENCES)
        sql = predicate.to_sql()
        assert "dblp.venue = 'INFOCOM' OR dblp.venue = 'PODS'" in sql
        assert "dblp_author.aid = 128 OR dblp_author.aid = 116" in sql
        assert " AND " in sql
        expected = f_and(f_or(0.23, 0.14), f_or(0.19, 0.14))
        assert intensity == pytest.approx(expected)

    def test_conjunctive_clause(self):
        predicate, intensity = conjunctive_clause(TABLE7_PREFERENCES[:2])
        assert predicate.to_sql() == "dblp.venue = 'INFOCOM' AND dblp.venue = 'PODS'"
        assert intensity == pytest.approx(f_and(0.23, 0.14))

    def test_disjunctive_clause_orders_by_intensity(self):
        predicate, intensity = disjunctive_clause(TABLE7_PREFERENCES[:2])
        assert predicate.to_sql() == "dblp.venue = 'INFOCOM' OR dblp.venue = 'PODS'"
        assert intensity == pytest.approx(f_or(0.23, 0.14))

    def test_empty_preferences_rejected(self):
        with pytest.raises(EmptyPreferenceListError):
            mixed_clause([])

    def test_single_preference_mixed_clause(self):
        predicate, intensity = mixed_clause([("dblp.venue = 'PODS'", 0.4)])
        assert predicate.to_sql() == "dblp.venue = 'PODS'"
        assert intensity == pytest.approx(0.4)


class TestEnhanceQuery:
    def test_enhanced_sql_contains_clause(self):
        enhanced = enhance_query(TABLE7_PREFERENCES)
        assert enhanced.sql.startswith("SELECT *")
        assert "WHERE" in enhanced.sql
        assert enhanced.preference_count == 4
        assert 0.0 < enhanced.combined_intensity <= 1.0

    def test_semantics_selection(self):
        and_query = enhance_query(TABLE7_PREFERENCES[:2], semantics="and")
        or_query = enhance_query(TABLE7_PREFERENCES[:2], semantics="or")
        assert "AND" in and_query.sql
        assert "OR" in or_query.sql
        assert and_query.combined_intensity > or_query.combined_intensity

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            enhance_query(TABLE7_PREFERENCES, semantics="xor")

    def test_limit_appended(self):
        enhanced = enhance_query(TABLE7_PREFERENCES, limit=3)
        assert enhanced.sql.endswith("LIMIT 3")

    def test_enhanced_query_runs_on_database(self, tiny_db):
        venues = [row["venue"] for row in
                  tiny_db.query("SELECT DISTINCT venue FROM dblp LIMIT 2")]
        preferences = [(f"dblp.venue = '{venues[0]}'", 0.8),
                       (f"dblp.venue = '{venues[1]}'", 0.4)]
        enhanced = enhance_query(preferences, columns=["DISTINCT dblp.pid"])
        rows = tiny_db.query(enhanced.sql)
        assert len(rows) > 0


class TestRanking:
    def test_rank_orders_by_combined_intensity(self, tiny_db):
        venues = [row["venue"] for row in
                  tiny_db.query("SELECT DISTINCT venue FROM dblp LIMIT 2")]
        preferences = [(f"dblp.venue = '{venues[0]}'", 0.8),
                       ("dblp.year >= 2005", 0.5)]
        ranked = rank_tuples(tiny_db, preferences)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        # Tuples matching both preferences take the inflationary combination.
        both = set(matching_paper_ids(tiny_db, preferences[0][0])) & set(
            matching_paper_ids(tiny_db, preferences[1][0]))
        if both:
            best_pid = ranked[0][0]
            assert best_pid in both
            assert ranked[0][1] == pytest.approx(f_and(0.8, 0.5))

    def test_rank_top_k_truncates(self, tiny_db):
        ranked = rank_tuples(tiny_db, [("dblp.year >= 2000", 0.5)], top_k=5)
        assert len(ranked) == 5

    def test_negative_preferences_excluded_by_default(self, tiny_db):
        venue = tiny_db.scalar("SELECT venue FROM dblp LIMIT 1")
        ranked = rank_tuples(tiny_db, [(f"dblp.venue = '{venue}'", -0.5)])
        assert ranked == []
        ranked_with = rank_tuples(tiny_db, [(f"dblp.venue = '{venue}'", -0.5)],
                                  include_negative=True)
        assert ranked_with

    def test_covered_paper_ids_union(self, tiny_db):
        venues = [row["venue"] for row in
                  tiny_db.query("SELECT DISTINCT venue FROM dblp LIMIT 2")]
        preferences = [(f"dblp.venue = '{venues[0]}'", 0.8),
                       (f"dblp.venue = '{venues[1]}'", 0.4)]
        covered = covered_paper_ids(tiny_db, preferences)
        first = set(matching_paper_ids(tiny_db, preferences[0][0]))
        second = set(matching_paper_ids(tiny_db, preferences[1][0]))
        assert set(covered) == first | second
