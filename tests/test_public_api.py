"""Tests for the top-level package surface and cross-module integration."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Database,
    PEPSAlgorithm,
    PreferenceQueryRunner,
    UserProfile,
    build_hypre_graph,
    preferences_from_graph,
)
from repro.exceptions import ReproError, IntensityRangeError, TopKError
from repro.workload import DblpConfig, generate_dblp, load_dataset


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackage_all_names_resolve(self):
        import repro.algorithms as algorithms
        import repro.backend as backend
        import repro.core as core
        import repro.extensions as extensions
        import repro.graphstore as graphstore
        import repro.index as index
        import repro.loadgen as loadgen
        import repro.serving as serving
        import repro.sqldb as sqldb
        import repro.telemetry as telemetry
        import repro.workload as workload

        for module in (algorithms, backend, core, extensions, graphstore,
                       index, loadgen, serving, sqldb, telemetry, workload):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_subpackage_all_names_documented(self):
        """Every ``__all__`` symbol appears in its package docstring's API list."""
        import repro.algorithms as algorithms
        import repro.backend as backend
        import repro.core as core
        import repro.core.hypre as hypre
        import repro.extensions as extensions
        import repro.graphstore as graphstore
        import repro.index as index
        import repro.loadgen as loadgen
        import repro.serving as serving
        import repro.sqldb as sqldb
        import repro.telemetry as telemetry
        import repro.workload as workload

        for module in (repro, algorithms, backend, core, hypre, extensions,
                       graphstore, index, loadgen, serving, sqldb, telemetry,
                       workload):
            for name in module.__all__:
                assert name in module.__doc__, (
                    f"{name} undocumented in {module.__name__}")

    def test_exception_hierarchy(self):
        assert issubclass(IntensityRangeError, ReproError)
        assert issubclass(TopKError, ReproError)
        with pytest.raises(ReproError):
            raise IntensityRangeError(2.0, -1.0, 1.0)


class TestReadmeQuickstart:
    """The README quickstart must stay runnable end to end."""

    def test_quickstart_flow(self):
        profile = UserProfile(uid=1)
        profile.add_quantitative("dblp.year >= 2009", 0.8)
        profile.add_quantitative("dblp.venue = 'INFOCOM'", -1.0)
        profile.add_qualitative("dblp.venue = 'VLDB'", "dblp.venue = 'SIGMOD'", 0.3)

        hypre, report = build_hypre_graph(profile)
        assert report.qualitative_edges == 1

        db = Database(":memory:")
        load_dataset(db, generate_dblp(DblpConfig(n_papers=200, n_authors=80,
                                                  n_venues=8, seed=1)))
        runner = PreferenceQueryRunner(db)
        peps = PEPSAlgorithm(runner, preferences_from_graph(hypre, 1))
        ranking = peps.top_k(10)
        assert len(ranking) == 10
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
        db.close()


class TestDatabaseOnDisk:
    def test_file_backed_database_persists(self, tmp_path, tiny_dataset):
        path = tmp_path / "workload.sqlite"
        with Database(path) as db:
            load_dataset(db, tiny_dataset)
            papers = db.total_papers()
        # Re-open the file and verify the data survived the connection.
        with Database(path) as db:
            assert db.total_papers() == papers

    def test_create_false_skips_schema(self, tmp_path):
        path = tmp_path / "raw.sqlite"
        with Database(path, create=False) as db:
            assert db.query("SELECT name FROM sqlite_master WHERE type='table'") == []
