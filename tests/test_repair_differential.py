"""Differential property tests for the repair path ("repair, don't recompute").

The repair machinery maintains cached Top-K answers in place under data
mutations; its oracle is a from-scratch recomputation.  This module drives
the equivalence adversarially:

* **Random mutation sequences** (hypothesis): arbitrary interleavings of
  inserts, deletes and in-place updates against a live ``TopKServer``, on
  *both* storage backends, asserting after every mutation that every served
  answer equals ``fresh_top_k`` and that repairs ran zero SQL.
* **Unit-level ``apply_delta`` coverage**: floor handling on truncated
  buffers, complete-buffer growth, tie ordering, and each mandatory
  fallback (unscorable rows, buffer underflow, repair disabled).
* **Forced fallbacks end to end**: a zero-margin buffer (``repair_delta=0``)
  underflows on the first ranked delete and must invalidate, never guess.
* **The repair-vs-epoch race**: a repair sweep is an epoch-bumping sweep,
  so stale puts still lose, and no sweep ever resurrects an entry that an
  invalidation dropped.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TopKServer, UserProfile, fresh_top_k, parse_predicate
from repro.core.intensity import combine_and
from repro.backend import create_backend
from repro.serving.results import (
    FALLBACK_UNDERFLOW,
    FALLBACK_UNSCORABLE,
    REPAIRED,
    CachedResult,
    ResultCache,
)
from repro.sqldb.events import (
    TUPLES_DELETED,
    TUPLES_INSERTED,
    TUPLES_UPDATED,
    DataMutation,
)
from repro.workload import DblpConfig, Paper, generate_dblp, load_dataset

BACKENDS = ("sqlite", "memory")
VENUES = ("VLDB", "SIGMOD", "PVLDB", "ICDE", "PODS", "CIKM")
DBLP = DblpConfig(n_papers=60, n_authors=24, n_venues=6, seed=11)
USERS = (1, 2, 3)
K = 4


def _build_server(backend, repair_delta=None):
    db = create_backend(backend, path=":memory:")
    load_dataset(db, generate_dblp(DBLP))
    server = TopKServer(db, capacity=8, repair_delta=repair_delta)
    for uid in USERS:
        profile = UserProfile(uid=uid)
        profile.add_quantitative(f"dblp.venue = '{VENUES[uid]}'", 0.9)
        profile.add_quantitative("dblp.year >= 2005", 0.4)
        server.update_profile(uid, profile)
        server.top_k(uid, K)
    return db, server


# -- random mutation sequences (hypothesis) -----------------------------------

#: Abstract op seeds; deletes/updates resolve their pid against the live
#: population at apply time (modular indexing keeps every seed applicable).
_ops = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, len(VENUES) - 1),
              st.integers(1995, 2015), st.integers(1, DBLP.n_authors)),
    st.tuples(st.just("delete"), st.integers(0, 10_000)),
    st.tuples(st.just("update"), st.integers(0, 10_000),
              st.integers(0, len(VENUES) - 1), st.integers(1995, 2015)),
)


def _apply(server, live, next_pid, op):
    kind = op[0]
    if kind == "insert":
        _, venue_index, year, aid = op
        pid = next_pid
        report = server.insert_tuples(
            [Paper(pid=pid, title=f"P{pid}", venue=VENUES[venue_index],
                   year=year)],
            paper_authors=[(pid, aid)])
        live.add(pid)
        return report, next_pid + 1
    pool = sorted(live)
    if not pool:
        return None, next_pid
    pid = pool[op[1] % len(pool)]
    if kind == "delete":
        report = server.delete_tuples([pid])
        live.discard(pid)
    else:
        _, _, venue_index, year = op
        report = server.update_tuples(
            [Paper(pid=pid, title=f"P{pid}", venue=VENUES[venue_index],
                   year=year)])
    return report, next_pid


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_ops, min_size=1, max_size=10))
def test_random_mutation_sequences_stay_exact(backend, ops):
    """After every mutation of a random sequence, on either backend, every
    served answer equals a from-scratch recomputation, repairs run zero SQL
    and the impact accounting covers every previously cached entry."""
    db, server = _build_server(backend)
    try:
        live = {row["pid"] for row in db.joined_rows()}
        next_pid = 9000
        for op in ops:
            cached_before = len(server.results)
            report, next_pid = _apply(server, live, next_pid, op)
            if report is None:
                continue
            assert report.repair_sql_statements == 0
            assert (report.results_invalidated + report.results_repaired
                    + report.results_spared) == cached_before
            for uid in USERS:
                served = server.top_k(uid, K)
                assert list(served.ranking) == fresh_top_k(db, uid, K), (
                    f"{backend}: divergence after {op!r} for uid={uid}")
    finally:
        server.close()
        db.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_fixed_mutation_mix_actually_repairs(backend):
    """A deterministic mutation mix exercises the repair path for real —
    most affected answers are maintained in place, none incorrectly."""
    db, server = _build_server(backend)
    try:
        for step, venue in enumerate(("SIGMOD", "PVLDB", "ICDE", "SIGMOD")):
            pid = 9100 + step
            server.insert_tuples(
                [Paper(pid=pid, title=f"R{pid}", venue=venue, year=2012)],
                paper_authors=[(pid, 1 + step)])
        server.update_tuples(
            [Paper(pid=9100, title="R9100", venue="PVLDB", year=2013)])
        server.delete_tuples([9101, 9102])
        stats = server.results.stats()
        assert stats["repairs"] > 0
        assert stats["repairs"] >= stats["repair_fallbacks"]
        for uid in USERS:
            assert list(server.top_k(uid, K).ranking) == fresh_top_k(db, uid, K)
    finally:
        server.close()
        db.close()


# -- forced fallbacks end to end ----------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_forced_underflow_falls_back_to_invalidation(backend):
    """With a zero over-fetch margin the buffer is exactly k deep; deleting a
    ranked tuple spends margin that does not exist, so the repair must
    refuse and the entry must be dropped — then recompute exactly."""
    db, server = _build_server(backend, repair_delta=0)
    try:
        served = server.top_k(1, K)
        victim = served.ranking[0][0]
        before = server.results.repair_underflows
        report = server.delete_tuples([victim])
        assert server.results.repair_underflows == before + 1
        assert report.results_invalidated >= 1
        assert server.results.peek(1, K) is None
        assert list(server.top_k(1, K).ranking) == fresh_top_k(db, 1, K)
    finally:
        server.close()
        db.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_negative_repair_delta_disables_repair(backend):
    """``repair_delta < 0`` is the invalidate-and-recompute baseline: every
    affected answer is dropped, never repaired, and answers stay exact."""
    db, server = _build_server(backend, repair_delta=-1)
    try:
        assert not server.results.repair_enabled
        report = server.insert_tuples(
            [Paper(pid=9300, title="B", venue=VENUES[1], year=2012)],
            paper_authors=[(9300, 1)])
        assert report.results_repaired == 0
        assert report.results_invalidated >= 1
        assert server.results.repairs == 0
        for uid in USERS:
            assert list(server.top_k(uid, K).ranking) == fresh_top_k(db, uid, K)
    finally:
        server.close()
        db.close()


# -- apply_delta unit coverage ------------------------------------------------

#: Two predicates so matched subsets score distinctly: venue-only 0.9,
#: year-only 0.4, both combine_and -> 0.94.
_PREDS = ("dblp.venue = 'VLDB'", "dblp.year >= 2010")
_INTENS = (0.9, 0.4)


def _row(pid, venue="VLDB", year=2012, **overrides):
    row = {"pid": pid, "title": "T", "venue": venue, "year": year,
           "abstract": "", "aid": 1}
    row.update(overrides)
    return row


def _entry(buffer, k=2, complete=False):
    predicates = tuple(parse_predicate(sql) for sql in _PREDS)
    return CachedResult(uid=1, k=k, ranking=tuple(buffer[:k]),
                        predicates=predicates, intensities=_INTENS,
                        buffer=tuple(buffer), complete=complete,
                        depth=len(buffer))


def _insert(*rows):
    return DataMutation(TUPLES_INSERTED, "dblp", rows=list(rows),
                        old_rows=[], pids=sorted({r["pid"] for r in rows}))


def _delete(*rows):
    return DataMutation(TUPLES_DELETED, "dblp", rows=[],
                        old_rows=list(rows),
                        pids=sorted({r["pid"] for r in rows}))


def _update(old, new):
    return DataMutation(TUPLES_UPDATED, "dblp", rows=[new], old_rows=[old],
                        pids=[new["pid"]])


BOTH = combine_and([0.9, 0.4])  # bit-exact: repairs fold in index order
VENUE_ONLY = 0.9


class TestApplyDelta:
    def test_insert_above_floor_enters_truncated_buffer(self):
        entry = _entry([(1, BOTH), (2, VENUE_ONLY), (3, VENUE_ONLY)])
        repaired, reason = entry.apply_delta(_insert(_row(10)))
        assert reason == REPAIRED
        # Score ties pid 1; pid order breaks the tie; depth trim holds.
        assert repaired.buffer == ((1, BOTH), (10, BOTH), (2, VENUE_ONLY))
        assert repaired.ranking == ((1, BOTH), (10, BOTH))
        assert repaired.depth == 3 and not repaired.complete

    def test_insert_below_floor_of_truncated_buffer_is_a_noop(self):
        entry = _entry([(1, BOTH), (2, BOTH), (3, VENUE_ONLY)])
        repaired, reason = entry.apply_delta(
            _insert(_row(10, year=1999)))  # venue-only: ties the floor
        assert reason == REPAIRED
        assert repaired is entry  # provably irrelevant: below the floor

    def test_complete_buffer_grows_without_floor_or_trim(self):
        entry = _entry([(1, BOTH)], complete=True)
        repaired, reason = entry.apply_delta(
            _insert(_row(10, year=1999)))  # would be below any floor
        assert reason == REPAIRED
        assert repaired.buffer == ((1, BOTH), (10, VENUE_ONLY))
        assert repaired.complete

    def test_delete_from_complete_buffer_may_shrink_below_k(self):
        entry = _entry([(1, BOTH), (2, VENUE_ONLY)], complete=True)
        repaired, reason = entry.apply_delta(_delete(_row(2)))
        assert reason == REPAIRED
        assert repaired.buffer == ((1, BOTH),)
        assert repaired.ranking == ((1, BOTH),)

    def test_update_rescores_in_place(self):
        entry = _entry([(1, BOTH), (2, VENUE_ONLY)], complete=True)
        repaired, reason = entry.apply_delta(
            _update(_row(2, year=1999), _row(2, year=2014)))
        assert reason == REPAIRED
        assert repaired.buffer == ((1, BOTH), (2, BOTH))

    def test_tie_orders_by_pid_ascending(self):
        entry = _entry([(2, VENUE_ONLY), (3, VENUE_ONLY)], complete=True)
        repaired, _ = entry.apply_delta(_insert(_row(1, year=1999)))
        assert repaired.buffer == (
            (1, VENUE_ONLY), (2, VENUE_ONLY), (3, VENUE_ONLY))

    def test_truncated_underflow_forces_fallback(self):
        entry = _entry([(1, BOTH), (2, VENUE_ONLY)])
        repaired, reason = entry.apply_delta(_delete(_row(1)))
        assert repaired is None and reason == FALLBACK_UNDERFLOW

    def test_unscorable_row_forces_fallback(self):
        entry = _entry([(1, BOTH), (2, VENUE_ONLY)], complete=True)
        partial = {"pid": 9, "venue": "VLDB"}  # no year: verdict undecidable
        mutation = DataMutation(TUPLES_INSERTED, "dblp", rows=[partial],
                                old_rows=[], pids=[9])
        repaired, reason = entry.apply_delta(mutation)
        assert repaired is None and reason == FALLBACK_UNSCORABLE

    def test_plain_entry_without_buffer_is_not_maintainable(self):
        predicates = (parse_predicate(_PREDS[0]),)
        entry = CachedResult(uid=1, k=1, ranking=((1, 0.9),),
                             predicates=predicates)
        assert not entry.maintainable
        repaired, _ = entry.apply_delta(_insert(_row(10)))
        assert repaired is None

    def test_affected_rows_returns_the_matching_subset(self):
        entry = _entry([(1, BOTH)])
        rows = [_row(5), _row(6, venue="ICDE", year=1999), _row(7, year=2011)]
        assert entry.affected_rows(rows) == [rows[0], rows[2]]
        assert entry.may_be_affected_by(rows)
        assert not entry.may_be_affected_by([rows[1]])


# -- the repair-vs-epoch race -------------------------------------------------

class TestRepairEpochGuard:
    def _cache_with_entry(self):
        cache = ResultCache()
        predicates = tuple(parse_predicate(sql) for sql in _PREDS)
        cache.put(1, 1, ((7, BOTH),), predicates, intensities=_INTENS,
                  buffer=((7, BOTH),), complete=True)
        return cache, predicates

    def test_repair_sweep_bumps_epoch_and_rejects_stale_put(self):
        cache, predicates = self._cache_with_entry()
        snapshot = cache.epoch
        dropped = cache.on_data_mutation(
            _update(_row(7, year=1999), _row(7, year=2014)))
        assert dropped == 0 and cache.repairs == 1  # repaired, not dropped
        # An answer computed from pre-mutation data must still lose the race.
        assert cache.put(1, 1, ((7, BOTH),), predicates,
                         epoch=snapshot) is None
        assert cache.stale_puts_rejected == 1

    def test_sweep_never_resurrects_a_dropped_entry(self):
        cache, _ = self._cache_with_entry()
        assert cache.invalidate_user(1) == 1
        cache.on_data_mutation(_insert(_row(7)))
        assert cache.peek(1, 1) is None
        assert cache.repairs == 0

    def test_concurrent_invalidation_and_repair_sweeps(self):
        """Hammer puts/invalidations against repair sweeps: the cache must
        never crash, and once the final invalidation lands the entry stays
        gone — a sweep only transforms entries that are still present."""
        cache, predicates = self._cache_with_entry()
        mutation = _update(_row(7, year=1999), _row(7, year=2014))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                cache.put(1, 1, ((7, BOTH),), predicates,
                          intensities=_INTENS, buffer=((7, BOTH),),
                          complete=True)
                cache.invalidate_user(1)

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            for _ in range(300):
                cache.on_data_mutation(mutation)
        finally:
            stop.set()
            worker.join()
        cache.invalidate_user(1)
        assert cache.peek(1, 1) is None
        cache.on_data_mutation(mutation)
        assert cache.peek(1, 1) is None
