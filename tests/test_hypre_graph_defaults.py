"""Unit tests for the HYPRE graph container and DEFAULT_VALUE strategies."""

from __future__ import annotations

import pytest

from repro.core.hypre.defaults import (
    FALLBACK_AVG,
    FALLBACK_DEFAULT,
    DefaultValueStrategy,
    default_value_table,
)
from repro.core.hypre.graph import (
    SOURCE_COMPUTED,
    SOURCE_USER,
    UID_INDEX_LABEL,
    HypreGraph,
)
from repro.graphstore import CYCLE, DISCARD, PREFERS, PropertyGraph


class TestHypreGraphNodes:
    def test_create_or_return_creates_once(self):
        hypre = HypreGraph()
        first_id, created = hypre.create_or_return_node(2, "venue = 'VLDB'", 0.8)
        assert created
        second_id, created_again = hypre.create_or_return_node(2, "venue='VLDB'")
        assert not created_again
        assert first_id == second_id

    def test_same_predicate_different_user_gets_new_node(self):
        hypre = HypreGraph()
        first, _ = hypre.create_or_return_node(1, "venue = 'VLDB'", 0.5)
        second, _ = hypre.create_or_return_node(2, "venue = 'VLDB'", 0.5)
        assert first != second

    def test_node_without_intensity(self):
        hypre = HypreGraph()
        node_id, _ = hypre.create_or_return_node(1, "venue = 'VLDB'")
        assert hypre.intensity_of(node_id) is None
        assert hypre.intensity_source(node_id) is None

    def test_set_intensity_records_provenance(self):
        hypre = HypreGraph()
        node_id, _ = hypre.create_or_return_node(1, "venue = 'VLDB'")
        hypre.set_intensity(node_id, 0.6, SOURCE_COMPUTED)
        assert hypre.intensity_of(node_id) == 0.6
        assert hypre.intensity_source(node_id) == SOURCE_COMPUTED

    def test_batch_insert_registers_lookup(self):
        hypre = HypreGraph()
        ids = hypre.add_quantitative_batch(3, [("venue = 'A'", 0.1), ("venue = 'B'", 0.2)])
        assert len(ids) == 2
        assert hypre.find_node_id(3, "venue = 'A'") == ids[0]
        assert hypre.user_node_ids(3) == sorted(ids)

    def test_uid_index_exists(self):
        hypre = HypreGraph()
        assert hypre.graph.has_index(UID_INDEX_LABEL, "uid")

    def test_wrapping_existing_graph_rebuilds_lookup(self):
        hypre = HypreGraph()
        hypre.create_or_return_node(1, "venue = 'A'", 0.4)
        rewrapped = HypreGraph(hypre.graph)
        assert rewrapped.find_node_id(1, "venue = 'A'") is not None


class TestHypreGraphEdges:
    def test_edge_kinds(self):
        hypre = HypreGraph()
        left, _ = hypre.create_or_return_node(1, "a = 1", 0.5)
        right, _ = hypre.create_or_return_node(1, "a = 2", 0.3)
        hypre.add_prefers_edge(left, right, 0.2)
        hypre.add_cycle_edge(right, left, 0.2)
        hypre.add_discard_edge(left, right, 0.1)
        assert len(hypre.qualitative_edges(1, (PREFERS,))) == 1
        assert len(hypre.qualitative_edges(1, (CYCLE,))) == 1
        assert len(hypre.qualitative_edges(1, (DISCARD,))) == 1

    def test_prefers_degree_ignores_other_labels(self):
        hypre = HypreGraph()
        left, _ = hypre.create_or_return_node(1, "a = 1", 0.5)
        right, _ = hypre.create_or_return_node(1, "a = 2", 0.3)
        hypre.add_discard_edge(left, right, 0.1)
        assert hypre.prefers_degree(left) == 0
        hypre.add_prefers_edge(left, right, 0.1)
        assert hypre.prefers_degree(left) == 1

    def test_creates_cycle_detection(self):
        hypre = HypreGraph()
        a, _ = hypre.create_or_return_node(1, "a = 1", 0.5)
        b, _ = hypre.create_or_return_node(1, "a = 2", 0.3)
        c, _ = hypre.create_or_return_node(1, "a = 3", 0.2)
        hypre.add_prefers_edge(a, b, 0.1)
        hypre.add_prefers_edge(b, c, 0.1)
        assert hypre.creates_cycle(c, a)
        assert not hypre.creates_cycle(a, c)


class TestUserViews:
    @pytest.fixture()
    def populated(self):
        hypre = HypreGraph()
        hypre.create_or_return_node(2, "venue = 'INFOCOM'", 0.23)
        hypre.create_or_return_node(2, "venue = 'PODS'", 0.14)
        hypre.create_or_return_node(2, "aid = 128", -0.4)
        hypre.create_or_return_node(9, "venue = 'VLDB'", 0.9)
        return hypre

    def test_quantitative_preferences_ordering(self, populated):
        pairs = populated.quantitative_preferences(2)
        assert [intensity for _, intensity in pairs] == sorted(
            [0.23, 0.14, -0.4], reverse=True)

    def test_quantitative_preferences_positive_only(self, populated):
        pairs = populated.quantitative_preferences(2, include_negative=False)
        assert all(intensity > 0 for _, intensity in pairs)
        assert len(pairs) == 2

    def test_user_ids(self, populated):
        assert populated.user_ids() == [2, 9]

    def test_user_subgraph_stats(self, populated):
        stats = populated.user_subgraph_stats(2)
        assert stats["nodes"] == 3
        assert stats["nodes_with_intensity"] == 3
        assert stats[f"edges[{PREFERS}]"] == 0

    def test_stats_include_edge_breakdown(self, populated):
        left = populated.find_node_id(2, "venue = 'INFOCOM'")
        right = populated.find_node_id(2, "venue = 'PODS'")
        populated.add_prefers_edge(left, right, 0.1)
        assert populated.stats()[f"edges[{PREFERS}]"] == 1


class TestDefaultValueStrategies:
    def test_constant_default(self):
        strategy = DefaultValueStrategy.by_name("default")
        assert strategy([0.1, 0.9]) == FALLBACK_DEFAULT
        assert strategy([]) == FALLBACK_DEFAULT

    def test_min_and_max(self):
        values = [-0.5, 0.2, 0.8]
        assert DefaultValueStrategy.by_name("min")(values) == -0.5
        assert DefaultValueStrategy.by_name("max")(values) == 0.8

    def test_min_pos_and_max_pos(self):
        values = [-0.5, 0.2, 0.8, 1.0]
        assert DefaultValueStrategy.by_name("min_pos")(values) == pytest.approx(0.2)
        # max_pos excludes saturated 1.0 values.
        assert DefaultValueStrategy.by_name("max_pos")(values) == pytest.approx(0.8)

    def test_positive_strategies_fall_back_to_zero(self):
        assert DefaultValueStrategy.by_name("min_pos")([-0.3]) == 0.0
        assert DefaultValueStrategy.by_name("max_pos")([-0.3]) == 0.0
        assert DefaultValueStrategy.by_name("avg_pos")([-0.3]) == 0.0

    def test_avg_saturation_uses_fallback(self):
        assert DefaultValueStrategy.by_name("avg")([1.0, 1.0]) == FALLBACK_AVG
        assert DefaultValueStrategy.by_name("avg")([]) == FALLBACK_AVG

    def test_avg_regular(self):
        assert DefaultValueStrategy.by_name("avg")([0.2, 0.4]) == pytest.approx(0.3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DefaultValueStrategy.by_name("median")

    def test_all_lists_every_strategy(self):
        names = [strategy.name for strategy in DefaultValueStrategy.all()]
        assert names == list(DefaultValueStrategy.NAMES)

    def test_table_contains_all_strategies(self):
        table = default_value_table([0.5, -0.2])
        assert set(table) == set(DefaultValueStrategy.NAMES)
        assert all(-1.0 <= value <= 1.0 for value in table.values())
