"""Unit tests for the property-graph engine."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DuplicateIndexError,
    EdgeNotFoundError,
    IndexNotFoundError,
    NodeNotFoundError,
)
from repro.graphstore import CYCLE, PREFERS, PropertyGraph


@pytest.fixture()
def graph():
    return PropertyGraph()


@pytest.fixture()
def chain_graph():
    """A small graph a -> b -> c plus an isolated node d."""
    graph = PropertyGraph()
    a = graph.add_node({"name": "a"})
    b = graph.add_node({"name": "b"})
    c = graph.add_node({"name": "c"})
    d = graph.add_node({"name": "d"})
    graph.add_edge(a.node_id, b.node_id, PREFERS, {"intensity": 0.5})
    graph.add_edge(b.node_id, c.node_id, PREFERS, {"intensity": 0.2})
    return graph, (a.node_id, b.node_id, c.node_id, d.node_id)


class TestNodeOperations:
    def test_add_node_assigns_sequential_ids(self, graph):
        first = graph.add_node({"x": 1})
        second = graph.add_node({"x": 2})
        assert second.node_id == first.node_id + 1
        assert graph.node_count() == 2

    def test_get_node_unknown_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.get_node(99)

    def test_update_node_merges_properties(self, graph):
        node = graph.add_node({"uid": 1, "intensity": 0.2})
        graph.update_node(node.node_id, {"intensity": 0.7})
        assert graph.get_node(node.node_id)["intensity"] == 0.7
        assert graph.get_node(node.node_id)["uid"] == 1

    def test_add_labels(self, graph):
        node = graph.add_node({"uid": 1})
        graph.add_labels(node.node_id, ["uidIndex"])
        assert graph.get_node(node.node_id).has_label("uidIndex")

    def test_remove_node_removes_incident_edges(self, chain_graph):
        graph, (a, b, c, _) = chain_graph
        graph.remove_node(b)
        assert not graph.has_node(b)
        assert graph.edge_count() == 0
        assert graph.out_degree(a) == 0
        assert graph.in_degree(c) == 0

    def test_batch_insert_returns_nodes_in_order(self, graph):
        created = graph.add_nodes_batch(
            [{"uid": i} for i in range(10)], labels=("uidIndex",))
        assert [node["uid"] for node in created] == list(range(10))
        assert all(node.has_label("uidIndex") for node in created)
        assert graph.node_count() == 10

    def test_len_matches_node_count(self, graph):
        graph.add_node()
        graph.add_node()
        assert len(graph) == 2


class TestEdgeOperations:
    def test_add_edge_requires_existing_nodes(self, graph):
        node = graph.add_node()
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(node.node_id, 42, PREFERS)

    def test_get_edge_unknown_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.get_edge(5)

    def test_update_edge_relabels(self, chain_graph):
        graph, (a, b, _, _) = chain_graph
        edge = graph.edges_between(a, b)[0]
        updated = graph.update_edge(edge.edge_id, rel_type=CYCLE)
        assert updated.rel_type == CYCLE
        assert graph.get_edge(edge.edge_id).rel_type == CYCLE

    def test_update_edge_merges_properties(self, chain_graph):
        graph, (a, b, _, _) = chain_graph
        edge = graph.edges_between(a, b)[0]
        graph.update_edge(edge.edge_id, properties={"note": "x"})
        assert graph.get_edge(edge.edge_id)["note"] == "x"
        assert graph.get_edge(edge.edge_id)["intensity"] == 0.5

    def test_remove_edge(self, chain_graph):
        graph, (a, b, _, _) = chain_graph
        edge = graph.edges_between(a, b)[0]
        graph.remove_edge(edge.edge_id)
        assert graph.edges_between(a, b) == []

    def test_edges_between_filters_by_type(self, graph):
        a = graph.add_node()
        b = graph.add_node()
        graph.add_edge(a.node_id, b.node_id, PREFERS)
        graph.add_edge(a.node_id, b.node_id, CYCLE)
        assert len(graph.edges_between(a.node_id, b.node_id)) == 2
        assert len(graph.edges_between(a.node_id, b.node_id, (PREFERS,))) == 1


class TestDegreesAndNeighbours:
    def test_degrees(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        assert graph.out_degree(a) == 1
        assert graph.in_degree(a) == 0
        assert graph.degree(b) == 2
        assert graph.degree(d) == 0
        assert graph.in_degree(c) == 1

    def test_self_loops_excluded_by_default(self, graph):
        node = graph.add_node()
        graph.add_edge(node.node_id, node.node_id, PREFERS)
        assert graph.out_degree(node.node_id) == 0
        assert graph.out_degree(node.node_id, include_self_loops=True) == 1

    def test_successors_and_predecessors(self, chain_graph):
        graph, (a, b, c, _) = chain_graph
        assert graph.successors(a) == [b]
        assert graph.predecessors(c) == [b]
        assert graph.successors(c) == []

    def test_degree_filtered_by_rel_type(self, graph):
        a = graph.add_node()
        b = graph.add_node()
        graph.add_edge(a.node_id, b.node_id, CYCLE)
        assert graph.out_degree(a.node_id, rel_types=(PREFERS,)) == 0
        assert graph.out_degree(a.node_id, rel_types=(CYCLE,)) == 1


class TestTraversal:
    def test_path_exists_forward_only(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        assert graph.path_exists(a, c)
        assert not graph.path_exists(c, a)
        assert not graph.path_exists(a, d)

    def test_path_exists_trivially_to_self(self, chain_graph):
        graph, (a, _, _, _) = chain_graph
        assert graph.path_exists(a, a)

    def test_path_exists_respects_rel_types(self, graph):
        a = graph.add_node()
        b = graph.add_node()
        graph.add_edge(a.node_id, b.node_id, CYCLE)
        assert not graph.path_exists(a.node_id, b.node_id, rel_types=(PREFERS,))
        assert graph.path_exists(a.node_id, b.node_id, rel_types=(CYCLE,))

    def test_shortest_path(self, chain_graph):
        graph, (a, b, c, _) = chain_graph
        assert graph.shortest_path(a, c) == [a, b, c]
        assert graph.shortest_path(c, a) is None
        assert graph.shortest_path(a, a) == [a]

    def test_bfs_reaches_descendants_only(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        assert set(graph.bfs(a)) == {a, b, c}
        assert set(graph.bfs(d)) == {d}

    def test_connected_component_is_undirected(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        assert graph.connected_component(c) == {a, b, c}
        assert graph.connected_component(d) == {d}

    def test_topological_order(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        order = graph.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)
        assert d in order

    def test_topological_order_detects_cycles(self, graph):
        a = graph.add_node()
        b = graph.add_node()
        graph.add_edge(a.node_id, b.node_id, PREFERS)
        graph.add_edge(b.node_id, a.node_id, PREFERS)
        with pytest.raises(ValueError):
            graph.topological_order()


class TestIndexes:
    def test_index_lookup(self, graph):
        graph.create_index("uidIndex", "uid")
        for uid in (1, 1, 2):
            graph.add_node({"uid": uid}, labels=("uidIndex",))
        assert len(graph.find_by_index("uidIndex", "uid", 1)) == 2
        assert len(graph.find_by_index("uidIndex", "uid", 2)) == 1
        assert graph.find_by_index("uidIndex", "uid", 3) == []

    def test_index_created_after_nodes_is_backfilled(self, graph):
        graph.add_node({"uid": 5}, labels=("uidIndex",))
        graph.create_index("uidIndex", "uid")
        assert len(graph.find_by_index("uidIndex", "uid", 5)) == 1

    def test_index_tracks_updates(self, graph):
        graph.create_index("uidIndex", "uid")
        node = graph.add_node({"uid": 1}, labels=("uidIndex",))
        graph.update_node(node.node_id, {"uid": 2})
        assert graph.find_by_index("uidIndex", "uid", 1) == []
        assert len(graph.find_by_index("uidIndex", "uid", 2)) == 1

    def test_index_tracks_removal(self, graph):
        graph.create_index("uidIndex", "uid")
        node = graph.add_node({"uid": 1}, labels=("uidIndex",))
        graph.remove_node(node.node_id)
        assert graph.find_by_index("uidIndex", "uid", 1) == []

    def test_duplicate_index_rejected(self, graph):
        graph.create_index("uidIndex", "uid")
        with pytest.raises(DuplicateIndexError):
            graph.create_index("uidIndex", "uid")

    def test_missing_index_lookup_raises(self, graph):
        with pytest.raises(IndexNotFoundError):
            graph.find_by_index("uidIndex", "uid", 1)

    def test_unlabelled_nodes_not_indexed(self, graph):
        graph.create_index("uidIndex", "uid")
        graph.add_node({"uid": 1})
        assert graph.find_by_index("uidIndex", "uid", 1) == []

    def test_find_nodes_uses_filters(self, graph):
        graph.create_index("uidIndex", "uid")
        graph.add_node({"uid": 1, "intensity": 0.5}, labels=("uidIndex",))
        graph.add_node({"uid": 1, "intensity": -0.5}, labels=("uidIndex",))
        graph.add_node({"uid": 2, "intensity": 0.9}, labels=("uidIndex",))
        positive = graph.find_nodes(label="uidIndex", uid=1,
                                    predicate=lambda node: node["intensity"] > 0)
        assert len(positive) == 1


class TestStatsAndSerialisation:
    def test_stats_counts_edge_types(self, chain_graph):
        graph, _ = chain_graph
        stats = graph.stats()
        assert stats["nodes"] == 4
        assert stats["edges"] == 2
        assert stats[f"edges[{PREFERS}]"] == 2

    def test_roundtrip_to_dict(self, chain_graph):
        graph, (a, b, c, d) = chain_graph
        graph.create_index("names", "name")
        restored = PropertyGraph.from_dict(graph.to_dict())
        assert restored.node_count() == graph.node_count()
        assert restored.edge_count() == graph.edge_count()
        assert restored.path_exists(a, c)
        assert restored.has_index("names", "name")
        # New nodes keep getting fresh ids after a round trip.
        new_node = restored.add_node({"name": "e"})
        assert new_node.node_id not in (a, b, c, d)
