"""Tests for the synthetic DBLP generator, loading and preference extraction."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.preference import ProfileRegistry
from repro.exceptions import ExtractionError, WorkloadError
from repro.sqldb.database import Database
from repro.workload.dblp import DEFAULT_VENUES, DblpConfig, generate_dblp, small_dataset
from repro.workload.extraction import (
    ExtractionConfig,
    PreferenceExtractor,
    author_predicate,
    richest_users,
    venue_predicate,
)
from repro.workload.loader import (
    build_workload_database,
    load_dataset,
    load_profiles,
    read_profiles,
)


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        config = DblpConfig(n_papers=150, n_authors=50, n_venues=6, seed=3)
        first = generate_dblp(config)
        second = generate_dblp(config)
        assert [paper.title for paper in first.papers] == [
            paper.title for paper in second.papers]
        assert first.citations == second.citations

    def test_different_seed_changes_output(self):
        base = DblpConfig(n_papers=150, n_authors=50, n_venues=6, seed=3)
        other = DblpConfig(n_papers=150, n_authors=50, n_venues=6, seed=4)
        assert generate_dblp(base).citations != generate_dblp(other).citations

    def test_sizes_match_config(self, tiny_dataset):
        assert len(tiny_dataset.papers) == 300
        assert len(tiny_dataset.authors) == 120
        assert len(tiny_dataset.venues()) <= 10

    def test_years_in_range(self, tiny_dataset):
        years = [paper.year for paper in tiny_dataset.papers]
        assert min(years) >= 1995
        assert max(years) <= 2013

    def test_citations_point_backwards(self, tiny_dataset):
        for pid, cid in tiny_dataset.citations:
            assert cid < pid

    def test_every_paper_has_authors(self, tiny_dataset):
        papers_with_authors = {pid for pid, _ in tiny_dataset.paper_authors}
        assert papers_with_authors == {paper.pid for paper in tiny_dataset.papers}

    def test_venue_distribution_is_skewed(self, tiny_dataset):
        counts = Counter(paper.venue for paper in tiny_dataset.papers)
        ordered = [count for _, count in counts.most_common()]
        assert ordered[0] >= ordered[-1] * 2

    def test_statistics_summary(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert stats["papers"] == 300
        assert stats["dblp_author_entries"] == len(tiny_dataset.paper_authors)
        assert stats["distinct_cited_papers"] <= stats["citation_entries"]

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            generate_dblp(DblpConfig(n_papers=0))
        with pytest.raises(WorkloadError):
            generate_dblp(DblpConfig(n_venues=len(DEFAULT_VENUES) + 1))
        with pytest.raises(WorkloadError):
            generate_dblp(DblpConfig(min_year=2015, max_year=2010))
        with pytest.raises(WorkloadError):
            generate_dblp(DblpConfig(max_authors_per_paper=0))

    def test_small_dataset_helper(self):
        dataset = small_dataset()
        assert len(dataset.papers) == 300

    def test_convenience_views_consistent(self, tiny_dataset):
        authors_of = tiny_dataset.authors_of()
        papers_of = tiny_dataset.papers_of()
        for pid, aids in authors_of.items():
            for aid in aids:
                assert pid in papers_of[aid]


class TestLoader:
    def test_build_workload_database(self):
        db, dataset = build_workload_database(DblpConfig(n_papers=100, n_authors=40,
                                                         n_venues=6, seed=1))
        try:
            assert db.total_papers() == len(dataset.papers) == 100
        finally:
            db.close()

    def test_profiles_roundtrip(self, tiny_dataset):
        extractor = PreferenceExtractor(tiny_dataset)
        registry = extractor.extract_all(uids=[1, 2, 3])
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            counts = load_profiles(db, registry)
            assert counts["quantitative_pref"] == sum(
                len(profile.quantitative) for profile in registry)
            restored = read_profiles(db)
            assert set(restored.user_ids()) == set(registry.user_ids())
            for uid in registry.user_ids():
                assert len(restored.get(uid)) == len(registry.get(uid))

    def test_read_profiles_filtered_by_uid(self, tiny_dataset):
        extractor = PreferenceExtractor(tiny_dataset)
        registry = extractor.extract_all(uids=[1, 2, 3])
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            load_profiles(db, registry)
            only_one = read_profiles(db, uids=[1])
            assert only_one.user_ids() == [1]


class TestExtraction:
    @pytest.fixture(scope="class")
    def extractor(self, tiny_dataset):
        return PreferenceExtractor(tiny_dataset)

    def test_predicate_helpers(self):
        assert venue_predicate("VLDB") == "dblp.venue = 'VLDB'"
        assert venue_predicate("O'Reilly") == "dblp.venue = 'O''Reilly'"
        assert author_predicate(7) == "dblp_author.aid = 7"

    def test_venue_intensities_normalised(self, extractor, tiny_dataset):
        prolific = richest_users(extractor.extract_all(uids=range(1, 30)), 1)[0]
        intensities = extractor.venue_intensities(prolific)
        assert intensities
        assert sum(intensities.values()) == pytest.approx(1.0)
        assert len(intensities) <= 5

    def test_author_intensities_exclude_self(self, extractor):
        for uid in range(1, 20):
            scores = extractor.author_intensities(uid)
            assert uid not in scores
            assert all(score > 0 for score in scores.values())

    def test_negative_preferences_are_negative(self, extractor):
        for uid in range(1, 15):
            authors = extractor.author_intensities(uid)
            negatives = extractor.negative_venue_intensities(uid, authors)
            assert all(value < 0 for value in negatives.values())
            own = set(extractor.venue_intensities(uid))
            assert not own & set(negatives)

    def test_profile_structure(self, extractor):
        profile = extractor.extract_profile(1)
        assert profile.uid == 1
        # Author preferences below the threshold must not be quantitative.
        for pref in profile.quantitative:
            if "dblp_author.aid" in pref.predicate_sql and pref.intensity > 0:
                assert pref.intensity >= 0.1
        # Qualitative preferences have non-negative strengths.
        assert all(pref.intensity >= 0.0 for pref in profile.qualitative)

    def test_unknown_user_rejected(self, extractor):
        with pytest.raises(ExtractionError):
            extractor.extract_profile(10_000)

    def test_extract_all_skips_empty(self, extractor, tiny_dataset):
        registry = extractor.extract_all()
        assert len(registry) <= len(tiny_dataset.authors)
        assert all(len(profile) > 0 for profile in registry)

    def test_qualitative_pairs_follow_ordering(self, extractor):
        config = ExtractionConfig(include_negative=False)
        focused = PreferenceExtractor(extractor.dataset, config)
        profile = focused.extract_profile(1)
        author_scores = focused.author_intensities(1)
        ordered = sorted(author_scores.items(), key=lambda item: (-item[1], item[0]))
        author_pairs = [(pref.left_sql, pref.right_sql) for pref in profile.qualitative
                        if "dblp_author" in pref.left_sql]
        expected = [(author_predicate(a), author_predicate(b))
                    for (a, _), (b, _) in zip(ordered, ordered[1:])]
        assert author_pairs[: len(expected)] == expected

    def test_preference_distribution_histogram(self, extractor):
        histogram = extractor.preference_count_distribution()
        assert sum(histogram.values()) == len(extractor.extract_all())
        assert all(count >= 1 for count in histogram.values())

    def test_richest_users_ordering(self, extractor):
        registry = extractor.extract_all()
        top_two = richest_users(registry, 2)
        sizes = [len(registry.get(uid)) for uid in top_two]
        assert sizes == sorted(sizes, reverse=True)

    def test_config_toggles(self, tiny_dataset):
        bare = PreferenceExtractor(
            tiny_dataset,
            ExtractionConfig(include_negative=False, include_qualitative=False))
        profile = bare.extract_profile(1)
        assert not profile.qualitative
        assert all(pref.intensity >= 0 for pref in profile.quantitative)
