"""Property tests for the synthetic workload family (hypothesis).

Three properties pin the generator down:

* **determinism** — the same ``(seed, config)`` always produces the
  byte-identical dataset (equal :func:`dataset_digest`), and a different
  seed produces a different one;
* **invariants** — for random configs across the knob space,
  :func:`validate_dataset` holds: referential integrity, backward
  citations, closed value domains, declared-skew monotonicity;
* **engine independence** — both storage backends load any generated
  dataset to identical schema statistics and answer identical counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import BACKEND_NAMES, create_backend
from repro.exceptions import WorkloadError
from repro.workload.dblp import DblpConfig
from repro.workload.synthetic import (
    MAX_WIDTH,
    SYNTHETIC_SCALES,
    SyntheticConfig,
    attribute_specs,
    attribute_values,
    dataset_digest,
    generate_synthetic,
    generate_workload,
    synthetic_profile_factory,
    validate_dataset,
)

# -- strategies ---------------------------------------------------------------

configs = st.builds(
    SyntheticConfig,
    n_papers=st.integers(min_value=40, max_value=160),
    n_authors=st.integers(min_value=10, max_value=50),
    width=st.integers(min_value=0, max_value=MAX_WIDTH),
    venue_cardinality=st.integers(min_value=1, max_value=14),
    venue_zipf=st.floats(min_value=0.0, max_value=2.0,
                         allow_nan=False, allow_infinity=False),
    year_lo=st.integers(min_value=1990, max_value=2005),
    year_hi=st.integers(min_value=2005, max_value=2024),
    year_zipf=st.floats(min_value=0.0, max_value=1.5,
                        allow_nan=False, allow_infinity=False),
    extra_cardinality=st.integers(min_value=1, max_value=12),
    extra_zipf=st.floats(min_value=0.0, max_value=2.0,
                         allow_nan=False, allow_infinity=False),
    correlation=st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
    max_authors_per_paper=st.integers(min_value=1, max_value=4),
    author_zipf=st.floats(min_value=0.0, max_value=1.5,
                          allow_nan=False, allow_infinity=False),
    max_citations_per_paper=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


# -- determinism --------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(configs)
def test_same_config_generates_byte_identical_dataset(config):
    assert (dataset_digest(generate_synthetic(config))
            == dataset_digest(generate_synthetic(config)))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=1000))
def test_different_seed_changes_the_dataset(seed, bump):
    # A non-degenerate shape: a width-1 domain or a one-year span could
    # legitimately collide across seeds, which is not the property here.
    def config(value):
        return SyntheticConfig(n_papers=60, n_authors=20, width=2,
                               venue_cardinality=8, extra_cardinality=6,
                               correlation=0.3, seed=value)
    assert (dataset_digest(generate_synthetic(config(seed)))
            != dataset_digest(generate_synthetic(config(seed + bump))))


# -- invariants ---------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(configs)
def test_generated_datasets_satisfy_the_declared_invariants(config):
    dataset = generate_synthetic(config)
    validate_dataset(config, dataset)
    assert len(dataset.papers) == config.n_papers
    assert len(dataset.authors) == config.n_authors


@settings(max_examples=25, deadline=None)
@given(configs)
def test_attribute_domains_are_closed_and_rank_named(config):
    for spec in attribute_specs(config):
        domain = attribute_values(spec)
        assert len(domain) == spec.cardinality
        assert list(domain) == sorted(domain)
        assert all(value.startswith(f"{spec.name}-") for value in domain)


@settings(max_examples=15, deadline=None)
@given(configs)
def test_profile_factory_profiles_stay_inside_the_domains(config):
    dataset = generate_synthetic(config)
    venues = sorted({paper.venue for paper in dataset.papers})
    build = synthetic_profile_factory(config)
    profile = build(3, venues, config.year_lo, config.year_hi)
    assert profile.uid == 3
    # venue likes + year band + one equality predicate per extra attribute
    assert len(profile.quantitative) >= 2 + config.width


# -- engine independence ------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(configs)
def test_both_backends_load_to_identical_statistics(config):
    dataset = generate_synthetic(config)
    snapshots = {}
    for backend_name in sorted(BACKEND_NAMES):
        db = create_backend(backend_name)
        try:
            counts = db.load_dataset(dataset)
            predicate = f"dblp.venue = '{dataset.papers[0].venue}'"
            snapshots[backend_name] = (
                counts, db.table_counts(), db.workload_shape(),
                db.max_paper_id(), db.max_author_id(),
                db.count_matching(predicate))
        finally:
            db.close()
    values = list(snapshots.values())
    assert all(value == values[0] for value in values[1:])


# -- dispatch and config validation -------------------------------------------


def test_generate_workload_dispatches_on_config_type():
    synthetic = generate_workload(SyntheticConfig(n_papers=50, n_authors=15,
                                                  seed=3))
    dblp = generate_workload(DblpConfig(n_papers=50, n_authors=15,
                                        n_venues=5, seed=3))
    assert len(synthetic.papers) == 50 and len(dblp.papers) == 50
    with pytest.raises(WorkloadError):
        generate_workload(object())


@pytest.mark.parametrize("bad", [
    {"n_papers": 0},
    {"width": MAX_WIDTH + 1},
    {"width": -1},
    {"venue_cardinality": 0},
    {"year_lo": 2020, "year_hi": 2010},
    {"venue_zipf": -0.1},
    {"correlation": 1.5},
    {"max_authors_per_paper": 0},
    {"max_citations_per_paper": -1},
])
def test_inconsistent_configs_are_rejected(bad):
    with pytest.raises(WorkloadError):
        generate_synthetic(SyntheticConfig(**bad))


def test_scales_are_valid_and_distinct():
    digests = set()
    for name, config in SYNTHETIC_SCALES.items():
        config.validate()
        if config.n_papers <= 1000:
            digests.add(dataset_digest(generate_synthetic(config)))
    assert len(digests) >= 2


def test_correlation_one_locks_extras_to_the_anchor():
    config = SyntheticConfig(n_papers=80, n_authors=20, width=2,
                             venue_cardinality=6, extra_cardinality=6,
                             correlation=1.0, seed=5)
    dataset = generate_synthetic(config)
    anchor_domain = attribute_values(attribute_specs(config)[0])
    for paper in dataset.papers:
        rank = anchor_domain.index(paper.venue)
        assert paper.title == f"topic-{rank % config.extra_cardinality:03d}"
        assert paper.abstract == f"keyword-{rank % config.extra_cardinality:03d}"
