"""Whole-system lockstep differential: SqliteBackend vs MemoryBackend.

PR 3 pinned the in-memory predicate evaluator against SQLite row by row
(``test_predicate_sqlite_differential.py``); this module turns that into a
whole-system guarantee.  Two identical worlds — one per backend — replay the
identical deterministic schedule covering the full mutation mix (Top-K
reads, profile updates, tuple inserts, deletes and in-place updates), and
after **every operation** the two engines must agree on:

* every Top-K ranking *and* whether it was a cache hit,
* every mutation's invalidation report (results invalidated/spared, index
  entries dropped, joined rows carried),
* raw counts and id lists for the live predicate population,
* the joined view itself.

The replay driver's cross-backend arm (``verify_cluster_equivalence`` with
``server_backend="memory"``) additionally closes the loop three ways:
SQLite cluster == memory single server == fresh recomputation.
"""

from __future__ import annotations

import pytest

from repro.serving import ReplayConfig, ReplayDriver, TopKServer
from repro.workload.dblp import DblpConfig

#: Small world, every operation kind present, heavy mutation mix.
DBLP = DblpConfig(n_papers=160, n_authors=70, n_venues=8, seed=13)
REPLAY = ReplayConfig(users=14, requests=120, k=4, seed=29,
                      read_weight=6.0, update_weight=1.0,
                      insert_weight=1.0, delete_weight=0.8,
                      data_update_weight=0.8)


def _normalised_rows(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


class _Arm:
    """One backend's server plus the bookkeeping the lockstep compares."""

    def __init__(self, driver, backend):
        self.backend = backend
        self.db = driver.build_world(DBLP, backend=backend)
        self.server = TopKServer(self.db, capacity=6)

    def apply(self, op):
        """Run one replay op; return the comparable outcome record."""
        if op.kind == "read":
            result = self.server.top_k(op.uid, op.k)
            return ("read", op.uid, result.cache_hit, tuple(result.ranking))
        if op.kind == "update":
            report = self.server.update_profile(op.uid, op.profile)
            return ("update", op.uid, report.resident,
                    report.results_invalidated)
        if op.kind == "insert":
            report = self.server.insert_tuples(op.papers, op.paper_authors)
        elif op.kind == "delete":
            report = self.server.delete_tuples(op.pids)
        else:
            report = self.server.update_tuples(op.papers)
        return (op.kind, report.papers, report.joined_rows,
                report.results_invalidated, report.results_spared,
                report.index_entries_dropped)

    def close(self):
        self.server.close()
        self.db.close()


@pytest.fixture(scope="module")
def lockstep_outcomes():
    """Replay both arms in lockstep once; yield the per-op outcome streams."""
    driver = ReplayDriver(REPLAY)
    arms = [_Arm(driver, "sqlite"), _Arm(driver, "memory")]
    ops = driver.schedule(arms[0].db)
    outcomes = []
    spot_predicates = [
        "dblp.year >= 2000", "dblp.venue = 'VLDB'",
        "dblp.venue IN ('VLDB', 'SIGMOD') AND dblp.year >= 2001",
        "dblp.year >= 1998 AND dblp.year <= 2003",
    ]
    try:
        for op in ops:
            step = [arm.apply(op) for arm in arms]
            counts = [arm.db.count_many(spot_predicates) for arm in arms]
            outcomes.append((op.kind, step, counts))
        views = [_normalised_rows(arm.db.joined_rows()) for arm in arms]
        ids = [[arm.db.matching_paper_ids(predicate)
                for predicate in spot_predicates] for arm in arms]
        stats = [arm.server.stats() for arm in arms]
        yield {"ops": ops, "outcomes": outcomes, "views": views,
               "ids": ids, "stats": stats}
    finally:
        for arm in arms:
            arm.close()


class TestLockstepDifferential:
    def test_full_mutation_mix_present(self, lockstep_outcomes):
        kinds = {op.kind for op in lockstep_outcomes["ops"]}
        assert kinds == {"read", "update", "insert", "delete", "data_update"}

    def test_every_operation_outcome_identical(self, lockstep_outcomes):
        """Rankings, cache hits and mutation reports agree after every op."""
        for position, (kind, step, _) in enumerate(lockstep_outcomes["outcomes"]):
            sqlite_outcome, memory_outcome = step
            assert sqlite_outcome == memory_outcome, (
                f"op {position} ({kind}): sqlite={sqlite_outcome!r} "
                f"memory={memory_outcome!r}")

    def test_counts_identical_after_every_operation(self, lockstep_outcomes):
        for position, (kind, _, counts) in enumerate(lockstep_outcomes["outcomes"]):
            assert counts[0] == counts[1], f"op {position} ({kind}): {counts}"

    def test_final_joined_views_identical(self, lockstep_outcomes):
        sqlite_view, memory_view = lockstep_outcomes["views"]
        assert sqlite_view == memory_view

    def test_final_id_lists_identical(self, lockstep_outcomes):
        sqlite_ids, memory_ids = lockstep_outcomes["ids"]
        assert sqlite_ids == memory_ids

    def test_serving_counters_identical(self, lockstep_outcomes):
        """Same requests, same warm hits, same per-kind mutation counters."""
        sqlite_stats, memory_stats = lockstep_outcomes["stats"]
        assert sqlite_stats["requests"] == memory_stats["requests"]
        assert sqlite_stats["results"] == memory_stats["results"]
        assert sqlite_stats["sessions"] == memory_stats["sessions"]


class TestReplayDriverVerified:
    def test_memory_backend_replay_verifies_against_fresh(self):
        """The after-every-mutation oracle sweep passes on the memory engine."""
        driver = ReplayDriver(ReplayConfig(users=8, requests=50, k=4, seed=31,
                                           insert_weight=1.0, delete_weight=0.8,
                                           data_update_weight=0.8))
        db = driver.build_world(DBLP, backend="memory")
        server = TopKServer(db, capacity=4)
        try:
            report = driver.run(server, driver.schedule(db), verify=True)
            assert report.verified_results > 0
        finally:
            server.close()
            db.close()


class TestCrossBackendClusterEquivalence:
    """Satellite: the three-way verifier's cross-backend arm."""

    def test_sqlite_cluster_vs_memory_server_vs_fresh(self):
        driver = ReplayDriver(ReplayConfig(users=10, requests=60, k=4, seed=37,
                                           insert_weight=1.0, delete_weight=0.6,
                                           data_update_weight=0.6))
        checked = driver.verify_cluster_equivalence(
            DBLP, shards=2, capacity=4, server_backend="memory")
        assert checked > 0

    def test_cross_backend_arm_matches_same_backend_arm(self):
        """The cross-backend sweep checks exactly as many answers as the
        single-backend sweep over the same schedule."""
        driver = ReplayDriver(ReplayConfig(users=8, requests=40, k=3, seed=41,
                                           insert_weight=1.0))
        same = driver.verify_cluster_equivalence(DBLP, shards=2, capacity=4)
        cross = driver.verify_cluster_equivalence(DBLP, shards=2, capacity=4,
                                                  server_backend="memory")
        assert same == cross > 0
