"""The README's Python code blocks must stay executable.

Every fenced ``python`` block in ``README.md`` is executed, in order, in one
shared namespace (so a later block may build on an earlier one, exactly as a
reader following along would).  Shell blocks are checked structurally: each
documented command must reference a real entry point.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE_RE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def fenced_blocks(language: str):
    text = README.read_text(encoding="utf-8")
    return [match.group(2) for match in _FENCE_RE.finditer(text)
            if match.group(1) == language]


def test_readme_exists_with_expected_sections():
    text = README.read_text(encoding="utf-8")
    for heading in ("## Install", "## Quickstart", "## Tests and benchmarks",
                    "## Module map"):
        assert heading in text, f"README is missing the {heading!r} section"


def test_readme_python_blocks_execute():
    blocks = fenced_blocks("python")
    assert blocks, "README must contain executable python examples"
    namespace: dict = {}
    for position, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[python block {position}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure is the signal
            pytest.fail(f"README python block {position} failed: {exc!r}")


def test_readme_shell_commands_reference_real_targets():
    repo_root = README.parent
    for block in fenced_blocks("bash"):
        for line in block.splitlines():
            line = line.strip()
            if "repro.cli" in line:
                # The documented CLI module must be importable.
                assert (repo_root / "src/repro/cli.py").exists()
            if "benchmarks/" in line:
                target = next(part for part in line.split()
                              if part.startswith("benchmarks/"))
                assert (repo_root / target).exists(), f"{target} missing"
