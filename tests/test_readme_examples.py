"""The README's Python code blocks must stay executable.

Every fenced ``python`` block in ``README.md`` is executed, in order, in one
shared namespace (so a later block may build on an earlier one, exactly as a
reader following along would); the same checker runs over every ``docs/*.md``
in ``test_docs_examples.py``.  Shell blocks are checked structurally: each
documented command must reference a real entry point.
"""

from __future__ import annotations

from mdblocks import REPO_ROOT, execute_python_blocks, fenced_blocks

README = REPO_ROOT / "README.md"


def test_readme_exists_with_expected_sections():
    text = README.read_text(encoding="utf-8")
    for heading in ("## Install", "## Quickstart", "## Tests and benchmarks",
                    "## Module map", "## Examples"):
        assert heading in text, f"README is missing the {heading!r} section"


def test_readme_python_blocks_execute():
    executed = execute_python_blocks(README)
    assert executed, "README must contain executable python examples"


def test_readme_shell_commands_reference_real_targets():
    for block in fenced_blocks(README, "bash"):
        for line in block.splitlines():
            line = line.strip()
            if "repro.cli" in line:
                # The documented CLI module must be importable.
                assert (REPO_ROOT / "src/repro/cli.py").exists()
            if "benchmarks/" in line:
                target = next(part for part in line.split()
                              if part.startswith("benchmarks/"))
                assert (REPO_ROOT / target).exists(), f"{target} missing"


def test_readme_examples_table_lists_real_scripts():
    """Every example the README links must exist on disk, and every example
    script must be listed in the README's examples table."""
    import re

    text = README.read_text(encoding="utf-8")
    on_disk = {path.name for path in (REPO_ROOT / "examples").glob("*.py")}
    linked = {match.split("/", 1)[1]
              for match in re.findall(r"examples/\w+\.py", text)}
    assert linked == on_disk, (
        f"README examples out of sync: not listed {sorted(on_disk - linked)}, "
        f"dead links {sorted(linked - on_disk)}")
