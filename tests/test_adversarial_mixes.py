"""The named adversarial mixes: catalogue, targeting, replay and loadgen.

Every mix must (a) resolve and validate, (b) produce the identical verified
replay on both storage engines, (c) aim its mutations where its targeting
policy says, and (d) drive the load harness with the same semantics —
including the delete-churn regression: a mix with inserts disabled must
never synthesize a liveness-fallback insert that resurrects the drained
relation.
"""

from __future__ import annotations

import json

import pytest

from repro.backend import BACKEND_NAMES
from repro.cli import run_load, run_serve_replay
from repro.exceptions import ServingError
from repro.loadgen import LoadMix, WorkerStream, build_streams
from repro.serving import (
    DATA_UPDATE,
    DELETE,
    INSERT,
    MIXES,
    READ,
    TARGET_ANY,
    TARGET_BOUNDARY,
    TARGET_HOT,
    ReplayConfig,
    ReplayDriver,
    TopKServer,
    resolve_mix,
)
from repro.serving.mixes import target_pool
from repro.workload.synthetic import SyntheticConfig, synthetic_profile_factory

SYN = SyntheticConfig(n_papers=160, n_authors=50, width=2,
                      venue_cardinality=8, extra_cardinality=6,
                      correlation=0.3, seed=13)


def make_driver(mix_name, users=16, requests=90, seed=21):
    return ReplayDriver(
        ReplayConfig(users=users, requests=requests, k=4, seed=seed,
                     mix=mix_name),
        profile_factory=synthetic_profile_factory(SYN))


# -- catalogue ----------------------------------------------------------------


def test_catalogue_resolves_and_validates():
    assert resolve_mix(None) is None
    for name, mix in MIXES.items():
        assert resolve_mix(name) is mix
        assert mix.name == name
        weights = mix.weights()
        assert len(weights) == 5 and all(w >= 0 for w in weights)
        assert mix.target in (TARGET_ANY, TARGET_HOT, TARGET_BOUNDARY)
    with pytest.raises(ServingError, match="unknown adversarial mix"):
        resolve_mix("does-not-exist")
    with pytest.raises(ServingError):
        ReplayDriver(ReplayConfig(mix="does-not-exist"))


def test_mix_overrides_config_weights():
    driver = make_driver("delete-churn")
    assert driver.mix is MIXES["delete-churn"]
    assert driver._weights == list(MIXES["delete-churn"].weights())


# -- replay: cross-backend agreement per mix ----------------------------------


@pytest.mark.parametrize("mix_name", sorted(MIXES))
def test_mix_replays_verified_and_identical_on_both_backends(mix_name):
    outcomes = {}
    for backend in sorted(BACKEND_NAMES):
        driver = make_driver(mix_name)
        db = driver.build_world(SYN, backend=backend)
        server = TopKServer(db, capacity=8)
        try:
            report = driver.run(server, driver.schedule(db), verify=True)
        finally:
            server.close()
            db.close()
        assert report.verified_results > 0
        outcomes[backend] = (report.ops, report.reads, report.updates,
                             report.inserts, report.deletes,
                             report.data_updates, report.verified_results)
    values = list(outcomes.values())
    assert all(value == values[0] for value in values[1:]), outcomes


def test_delete_churn_schedules_no_inserts_and_drains():
    """Regression: the liveness fallback must not resurrect the relation."""
    driver = make_driver("delete-churn", requests=200)
    db = driver.build_world(SYN, backend="memory")
    try:
        ops = driver.schedule(db)
        kinds = [op.kind for op in ops]
        assert INSERT not in kinds
        assert kinds.count(DELETE) > 0
        server = TopKServer(db, capacity=8)
        try:
            report = driver.run(server, ops, verify=True)
        finally:
            server.close()
        assert report.inserts == 0
        assert report.deletes > 0
        assert report.verified_results > 0
    finally:
        db.close()


def test_hot_keys_mutations_land_in_the_hot_pool():
    driver = make_driver("hot-keys", requests=120)
    db = driver.build_world(SYN, backend="sqlite")
    try:
        pool = set(driver.target_pids(db))
        assert pool
        targeted = 0
        for op in driver.schedule(db):
            if op.kind == DELETE:
                assert op.pids[0] in pool
                targeted += 1
            elif op.kind == DATA_UPDATE:
                assert op.papers[0].pid in pool
                targeted += 1
        assert targeted > 0
    finally:
        db.close()


def test_boundary_pool_sits_past_the_top_k():
    driver = make_driver("repair-hostile")
    db = driver.build_world(SYN, backend="memory")
    try:
        uids = driver.config.uids()
        hot = target_pool(db, uids, driver.config.k, TARGET_HOT)
        boundary = target_pool(db, uids, driver.config.k, TARGET_BOUNDARY)
        assert boundary
        # The boundary pool reaches deeper than the pure top-k pool and is
        # what the repair-hostile driver actually targets.
        assert set(boundary) - set(hot)
        assert driver.target_pids(db) == boundary
        assert target_pool(db, uids, driver.config.k, TARGET_ANY) == []
    finally:
        db.close()


def test_benign_schedule_unchanged_by_mix_support():
    """No mix configured: schedules stay deterministic and insert-fallback."""
    driver_a = ReplayDriver(ReplayConfig(users=10, requests=60, seed=9))
    driver_b = ReplayDriver(ReplayConfig(users=10, requests=60, seed=9))
    db_a = driver_a.build_world(SYN, backend="memory")
    db_b = driver_b.build_world(SYN, backend="memory")
    try:
        assert driver_a.schedule(db_a) == driver_b.schedule(db_b)
    finally:
        db_a.close()
        db_b.close()


# -- loadgen ------------------------------------------------------------------


def test_loadmix_named_maps_the_catalogue():
    for name, mix in MIXES.items():
        load_mix = LoadMix.named(name, k=7)
        assert load_mix.name == name
        assert load_mix.k == 7
        assert load_mix.weights() == mix.weights()
        assert load_mix.target == mix.target
        assert load_mix.churn_base == (mix.insert_weight == 0.0
                                       and mix.delete_weight > 0.0)
    assert LoadMix.named(None) == LoadMix()
    with pytest.raises(ServingError):
        LoadMix.named("does-not-exist")


def test_worker_stream_without_inserts_degrades_to_reads():
    mix = LoadMix.named("delete-churn", k=3)
    stream = WorkerStream(0, mix, uids=[1, 2, 3], venues=["V"], lo=2000,
                          hi=2005, max_aid=4, pid_base=1000, seed=5,
                          owned_pids=[10, 11, 12])
    kinds = [stream.next_op().kind for _ in range(300)]
    assert kinds.count(INSERT) == 0
    assert kinds.count(DELETE) == 3  # exactly the owned pids, then drained
    assert kinds.count(READ) > 0


def test_worker_stream_hot_targeting_hits_the_shared_pool():
    mix = LoadMix.named("hot-keys", k=3)
    stream = WorkerStream(0, mix, uids=[1, 2], venues=["V"], lo=2000,
                          hi=2005, max_aid=4, pid_base=1000, seed=5,
                          hot_pids=[41, 42, 43])
    updates = [op for op in (stream.next_op() for _ in range(300))
               if op.kind == DATA_UPDATE]
    assert updates
    assert all(op.papers[0].pid in {41, 42, 43} for op in updates)


def test_build_streams_stripes_base_pids_disjointly():
    mix = LoadMix.named("delete-churn")
    base = list(range(100, 110))
    streams = build_streams(3, mix, uids=[1], venues=["V"], lo=2000, hi=2005,
                            max_aid=2, pid_base=1000, seed=7, base_pids=base)
    slices = [set(stream._alive) for stream in streams]
    assert set().union(*slices) == set(base)
    for index, first in enumerate(slices):
        for second in slices[index + 1:]:
            assert not first & second


# -- CLI ----------------------------------------------------------------------


def test_cli_serve_replay_family_and_mix_json():
    output = run_serve_replay(scale="tiny", users=12, requests=50,
                              baseline=False, as_json=True,
                              family="synthetic", mix="delete-churn")
    payload = json.loads(output)
    assert payload["config"]["family"] == "synthetic"
    assert payload["config"]["mix"] == "delete-churn"
    assert payload["mutations"]["inserts"] == 0
    assert payload["mutations"]["deletes"] > 0


def test_cli_load_family_and_mix_json():
    output = run_load(scale="tiny", users=10, threads=1, duration=0.4,
                      audit_interval=0.2, as_json=True,
                      family="synthetic", mix="profile-thrash")
    payload = json.loads(output)
    assert payload["config"]["family"] == "synthetic"
    assert payload["config"]["mix"] == "profile-thrash"
    assert payload["run"]["audit"]["mismatches"] == 0
    assert not payload["run"]["errors"]


def test_cli_rejects_unknown_family_and_mix():
    with pytest.raises(ValueError, match="unknown workload family"):
        run_serve_replay(family="csv")
    with pytest.raises(ServingError, match="unknown adversarial mix"):
        run_serve_replay(family="synthetic", mix="bogus")
