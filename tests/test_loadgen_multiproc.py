"""Multi-process load generation: specs, serialization, exact merging.

The multi-process harness (:mod:`repro.loadgen.multiproc`) ships every
child's :class:`~repro.loadgen.LoadReport` across the process boundary as
JSON-safe primitives and merges them exactly.  These tests pin the three
layers separately — the picklable :class:`~repro.loadgen.WorldSpec` and
its child-side world builder, the report round-trip, and the merge math —
then run the whole thing end to end with real forked processes (kept
short: world building dominates, not load duration).
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ServingError
from repro.loadgen import (
    PROCESS_SEED_STRIDE,
    LoadConfig,
    LoadGenerator,
    LoadMix,
    LoadReport,
    WorldSpec,
    build_server,
    merge_reports,
    run_multiprocess,
)
from repro.serving import ShardedTopKServer, TopKServer
from repro.workload.dblp import DblpConfig
from repro.workload.synthetic import SyntheticConfig

DBLP = DblpConfig(n_papers=120, n_authors=50, n_venues=6, seed=9)
K = 5
LOAD = LoadConfig(threads=2, duration_seconds=0.3, seed=29,
                  mix=LoadMix(k=K), audit_interval=0.15, audit_sample=4)


@pytest.fixture(params=("sqlite", "memory"))
def backend(request):
    return request.param


def _spec(backend, **overrides):
    defaults = dict(workload=DBLP, family="dblp", users=12, k=K, seed=29,
                    capacity=8, backend=backend)
    defaults.update(overrides)
    return WorldSpec(**defaults)


def _one_report(backend, config=LOAD):
    server, db = build_server(_spec(backend))
    try:
        return LoadGenerator(config).run(server)
    finally:
        server.close()
        db.close()


# -- WorldSpec + build_server -------------------------------------------------


def test_world_spec_rejects_unknown_family():
    with pytest.raises(ServingError):
        _spec("memory", family="parquet")


def test_world_spec_rejects_negative_shards():
    with pytest.raises(ServingError):
        _spec("memory", shards=-1)


def test_build_server_single_and_sharded(backend):
    server, db = build_server(_spec(backend))
    try:
        assert isinstance(server, TopKServer)
        assert server.top_k(next(iter(sorted(
            profile.uid for profile in db.read_profiles()))), K).ranking
    finally:
        server.close()
        db.close()
    cluster, db = build_server(_spec(backend, shards=2))
    try:
        assert isinstance(cluster, ShardedTopKServer)
        assert cluster.shards == 2
    finally:
        cluster.close()
        db.close()


def test_build_server_rebuilds_synthetic_factory(backend):
    """The synthetic family's profile factory is a closure that never
    crosses the process boundary — the spec carries the family *name* and
    the builder reconstructs the factory from the workload config."""
    config = SyntheticConfig(n_papers=100, n_authors=40,
                             venue_cardinality=5, seed=3)
    spec = WorldSpec(workload=config, family="synthetic", users=8, k=K,
                     seed=29, capacity=8, backend=backend)
    server, db = build_server(spec)
    try:
        uid = sorted(profile.uid for profile in db.read_profiles())[0]
        assert server.top_k(uid, K).ranking
    finally:
        server.close()
        db.close()


# -- LoadReport round-trip ----------------------------------------------------


def test_load_report_roundtrips_through_json(backend):
    report = _one_report(backend)
    payload = json.loads(json.dumps(report.to_dict()))
    clone = LoadReport.from_dict(payload)
    assert clone.as_dict() == report.as_dict()
    assert clone.histogram == report.histogram
    assert clone.histograms_by_kind == report.histograms_by_kind
    assert clone.clean == report.clean
    assert clone.processes == 1


def test_generator_reports_carry_full_state_histograms(backend):
    report = _one_report(backend)
    assert report.histogram is not None
    assert report.histogram.count == report.ops
    assert sum(histogram.count
               for histogram in report.histograms_by_kind.values()) \
        == report.ops


# -- merge math ---------------------------------------------------------------


def test_merge_reports_is_exact(backend):
    first = _one_report(backend)
    second = _one_report(backend, config=LoadConfig(
        threads=1, duration_seconds=0.2, seed=29 + PROCESS_SEED_STRIDE,
        mix=LoadMix(k=K), audit_interval=None))
    merged = merge_reports([first, second])
    assert merged.processes == 2
    assert merged.ops == first.ops + second.ops
    assert merged.threads == first.threads + second.threads
    assert merged.histogram.count == merged.ops
    assert merged.duration_seconds == max(first.duration_seconds,
                                          second.duration_seconds)
    assert merged.throughput_ops_per_sec == pytest.approx(
        merged.ops / merged.duration_seconds)
    for kind, count in merged.kind_counts.items():
        assert count == (first.kind_counts.get(kind, 0)
                         + second.kind_counts.get(kind, 0))
    # The merged latency summary is the summary of the merged histogram —
    # exactly what one histogram recording every sample would report.
    assert merged.latency == merged.histogram.as_dict()
    by_name = {record["name"]: record for record in merged.locks}
    for record in first.locks:
        assert record["name"] in by_name
    # Merging must not mutate its inputs.
    assert first.histogram.count == first.ops


def test_merge_reports_rejects_empty_and_summary_only():
    with pytest.raises(ServingError):
        merge_reports([])
    report = _one_report("memory")
    hollow = LoadReport.from_dict(
        dict(json.loads(json.dumps(report.to_dict())), histogram=None))
    with pytest.raises(ServingError):
        merge_reports([hollow])


# -- end to end, real processes -----------------------------------------------


def test_run_multiprocess_end_to_end(backend):
    result = run_multiprocess(_spec(backend), LOAD, processes=2)
    assert result.clean, (result.merged.errors, result.merged.audit)
    assert result.processes == 2
    assert result.merged.processes == 2
    assert len(result.per_process) == 2
    # Each child ran its own seed lane.
    seeds = {report.seed for report in result.per_process}
    assert seeds == {LOAD.seed, LOAD.seed + PROCESS_SEED_STRIDE}
    assert result.merged.ops == sum(report.ops
                                    for report in result.per_process)
    assert result.merged.threads == 2 * LOAD.threads
    assert result.merged.histogram.count == result.merged.ops
    # Every child ran the auditor; the merged audit saw every pass.
    assert result.merged.audit["audits"] == sum(
        report.audit["audits"] for report in result.per_process)
    # The whole outcome is JSON-ready for the bench artifact.
    json.dumps(result.as_dict())
    json.dumps(result.merged.as_dict())


def test_run_multiprocess_rejects_zero_processes():
    with pytest.raises(ServingError):
        run_multiprocess(_spec("memory"), LOAD, processes=0)
