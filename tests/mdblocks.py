"""Shared helpers for executing fenced code blocks in markdown docs.

Used by ``test_readme_examples.py`` (README.md) and
``test_docs_examples.py`` (every ``docs/*.md``): the CI docs job runs both,
so no tutorial code block can rot silently.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE_RE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def fenced_blocks(path: Path, language: str) -> List[str]:
    """Every fenced block of ``language`` in ``path``, in document order."""
    text = path.read_text(encoding="utf-8")
    return [match.group(2) for match in _FENCE_RE.finditer(text)
            if match.group(1) == language]


def execute_python_blocks(path: Path) -> int:
    """Execute ``path``'s python blocks in order, in one shared namespace.

    A later block may build on an earlier one, exactly as a reader following
    the document along would.  Fails the test on the first raising block;
    returns the number of blocks executed.
    """
    blocks = fenced_blocks(path, "python")
    namespace: Dict[str, object] = {}
    for position, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[python block {position}]",
                         "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure is the signal
            pytest.fail(f"{path.name} python block {position} failed: {exc!r}")
    return len(blocks)
