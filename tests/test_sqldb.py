"""Unit and integration tests for the SQLite relational substrate."""

from __future__ import annotations

import pytest

from repro.core.predicate import equals, parse_predicate
from repro.exceptions import (
    QueryBuildError,
    RelationalError,
    SchemaError,
    WorkloadError,
)
from repro.sqldb import (
    BASE_FROM,
    Database,
    SelectQuery,
    TUPLES_DELETED,
    TUPLES_INSERTED,
    TUPLES_UPDATED,
    DataMutation,
    count_matching_papers,
    count_query,
    create_schema,
    drop_schema,
    existing_tables,
    matching_paper_ids,
    paper_ids_query,
    verify_schema,
)
from repro.sqldb import schema as schema_module
from repro.workload.dblp import Paper
from repro.workload.loader import (
    append_papers,
    delete_papers,
    load_dataset,
    update_papers,
)


class TestSchema:
    def test_fresh_database_has_all_tables(self):
        with Database(":memory:") as db:
            assert existing_tables(db.connection) == sorted(schema_module.TABLES)
            verify_schema(db.connection)

    def test_drop_then_verify_fails(self):
        with Database(":memory:") as db:
            drop_schema(db.connection)
            with pytest.raises(SchemaError):
                verify_schema(db.connection)

    def test_create_schema_idempotent(self):
        with Database(":memory:") as db:
            create_schema(db.connection)
            create_schema(db.connection)
            verify_schema(db.connection)

    def test_table_counts_empty(self):
        with Database(":memory:") as db:
            counts = db.table_counts()
            assert set(counts) == set(schema_module.TABLES)
            assert all(count == 0 for count in counts.values())


class TestDatabase:
    def test_query_returns_dict_rows(self, tiny_db):
        rows = tiny_db.query("SELECT pid, venue FROM dblp LIMIT 3")
        assert len(rows) == 3
        assert set(rows[0]) == {"pid", "venue"}

    def test_query_one_and_scalar(self, tiny_db):
        row = tiny_db.query_one("SELECT COUNT(*) AS n FROM dblp")
        assert row["n"] > 0
        assert tiny_db.scalar("SELECT COUNT(*) FROM dblp") == row["n"]

    def test_query_one_none_when_empty(self, tiny_db):
        assert tiny_db.query_one("SELECT pid FROM dblp WHERE pid = -1") is None

    def test_count_handles_missing(self, tiny_db):
        assert tiny_db.count("SELECT COUNT(*) FROM dblp WHERE pid = -5") == 0

    def test_invalid_sql_raises_relational_error(self, tiny_db):
        with pytest.raises(RelationalError):
            tiny_db.query("SELECT nonsense FROM nowhere")

    def test_distinct_count_validates_table(self, tiny_db):
        assert tiny_db.distinct_count("dblp", "venue") > 1
        with pytest.raises(RelationalError):
            tiny_db.distinct_count("not_a_table", "x")

    def test_total_papers_matches_dataset(self, tiny_db, tiny_dataset):
        assert tiny_db.total_papers() == len(tiny_dataset.papers)

    def test_load_dataset_counts(self, tiny_dataset):
        with Database(":memory:") as db:
            counts = load_dataset(db, tiny_dataset)
            assert counts["dblp"] == len(tiny_dataset.papers)
            assert counts["author"] == len(tiny_dataset.authors)
            assert counts["citation"] == len(tiny_dataset.citations)
            assert counts["dblp_author"] == len(tiny_dataset.paper_authors)


class TestClosedDatabase:
    def test_close_is_idempotent(self):
        db = Database(":memory:")
        db.close()
        db.close()  # promised double-close safety
        assert db.is_closed

    def test_execute_after_close_raises_clear_error(self):
        db = Database(":memory:")
        db.close()
        with pytest.raises(RelationalError, match="database is closed"):
            db.execute("SELECT 1")

    def test_query_and_commit_after_close_raise(self):
        db = Database(":memory:")
        db.close()
        with pytest.raises(RelationalError, match="database is closed"):
            db.query("SELECT 1")
        with pytest.raises(RelationalError, match="database is closed"):
            db.commit()

    def test_connection_property_after_close_raises(self):
        db = Database(":memory:")
        db.close()
        with pytest.raises(RelationalError, match="database is closed"):
            _ = db.connection

    def test_context_manager_closes(self):
        with Database(":memory:") as db:
            assert not db.is_closed
        assert db.is_closed

    def test_close_clears_listeners(self):
        db = Database(":memory:")
        db.subscribe(lambda mutation: None)
        assert db.has_subscribers
        db.close()
        # A closed database can never mutate again; dropping the
        # subscriptions stops it pinning the serving layer's caches alive.
        assert not db.has_subscribers

    def test_notify_after_close_raises(self):
        db = Database(":memory:")
        db.close()
        with pytest.raises(RelationalError, match="database is closed"):
            db.notify(DataMutation(TUPLES_INSERTED, "dblp"))


class TestDataMutationEvents:
    def test_append_papers_notifies_with_joined_rows(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            events = []
            db.subscribe(events.append)
            append_papers(
                db,
                [Paper(pid=9001, title="T", venue="VLDB", year=2012)],
                paper_authors=[(9001, 1), (9001, 2)])
            assert len(events) == 1
            mutation = events[0]
            assert mutation.kind == TUPLES_INSERTED
            assert mutation.pids == (9001,)
            assert len(mutation.rows) == 2
            assert {row["aid"] for row in mutation.rows} == {1, 2}
            assert all(row["venue"] == "VLDB" for row in mutation.rows)

    def test_append_commits_rows(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            counts = append_papers(
                db, [Paper(pid=9002, title="T", venue="ICDE", year=2011)],
                paper_authors=[(9002, 3)])
            assert counts == {"dblp": 1, "dblp_author": 1, "citation": 0}
            assert db.scalar("SELECT venue FROM dblp WHERE pid = 9002") == "ICDE"

    def test_link_only_append_fetches_paper_for_notification(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            append_papers(db, [Paper(pid=9003, title="T", venue="PODS", year=2010)])
            events = []
            db.subscribe(events.append)
            append_papers(db, [], paper_authors=[(9003, 4)])
            (mutation,) = events
            assert len(mutation.rows) == 1
            assert mutation.rows[0]["venue"] == "PODS"
            assert mutation.rows[0]["aid"] == 4

    def test_unsubscribe_stops_delivery(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            events = []
            listener = db.subscribe(events.append)
            db.unsubscribe(listener)
            append_papers(db, [Paper(pid=9004, title="T", venue="CIKM", year=2009)],
                          paper_authors=[(9004, 1)])
            assert events == []

    def test_bulk_load_notifies_only_with_subscribers(self, tiny_dataset):
        with Database(":memory:") as db:
            events = []
            db.subscribe(events.append)
            load_dataset(db, tiny_dataset)
            assert len(events) == 1
            assert len(events[0].rows) == len(tiny_dataset.paper_authors)

    def test_replace_pre_image_rides_in_old_rows(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            append_papers(db, [Paper(pid=9005, title="T", venue="VLDB", year=2001)],
                          paper_authors=[(9005, 1)])
            events = []
            db.subscribe(events.append)
            append_papers(db, [Paper(pid=9005, title="T", venue="ICDE", year=2002)])
            (mutation,) = events
            assert {row["venue"] for row in mutation.old_rows} == {"VLDB"}
            assert {row["venue"] for row in
                    mutation.invalidation_rows()} >= {"VLDB", "ICDE"}

    def test_unlinked_paper_append_carries_no_rows(self, tiny_dataset):
        """A paper without author links is invisible to the inner join every
        query runs over, so its insertion must not invalidate anything —
        the later link-only append carries the real joined row instead."""
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            events = []
            db.subscribe(events.append)
            append_papers(db, [Paper(pid=9009, title="T", venue="VLDB", year=2001)])
            (mutation,) = events
            assert mutation.rows == ()
            assert mutation.pids == (9009,)

    def test_replace_post_image_keeps_surviving_author_links(self, tiny_dataset):
        """A REPLACE keeps the paper's dblp_author rows, so the post-image
        must carry the surviving aid — synthesizing aid=None would let a
        venue+author conjunction be unsoundly spared."""
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            append_papers(db, [Paper(pid=9008, title="T", venue="VLDB", year=2001)],
                          paper_authors=[(9008, 7)])
            events = []
            db.subscribe(events.append)
            append_papers(db, [Paper(pid=9008, title="T", venue="ICDE", year=2002)])
            (mutation,) = events
            post = [row for row in mutation.rows if row["pid"] == 9008]
            assert [row["aid"] for row in post] == [7]
            assert post[0]["venue"] == "ICDE"

    def test_delete_papers_notifies_with_pre_image(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            append_papers(db, [Paper(pid=9006, title="T", venue="EDBT", year=2003)],
                          paper_authors=[(9006, 1), (9006, 2)])
            events = []
            db.subscribe(events.append)
            removed = delete_papers(db, [9006])
            assert removed["dblp"] == 1
            assert removed["dblp_author"] == 2
            assert db.scalar("SELECT COUNT(*) FROM dblp WHERE pid = 9006") == 0
            (mutation,) = events
            assert mutation.kind == TUPLES_DELETED
            assert mutation.rows == ()
            assert len(mutation.old_rows) == 2
            assert all(row["venue"] == "EDBT" for row in mutation.old_rows)
            assert mutation.invalidation_rows() == mutation.old_rows

    def test_delete_of_unknown_pid_is_silent(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            events = []
            db.subscribe(events.append)
            removed = delete_papers(db, [777_777])
            assert removed == {"dblp": 0, "dblp_author": 0, "citation": 0}
            assert events == []

    def test_update_papers_notifies_with_both_images(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            append_papers(db, [Paper(pid=9007, title="Old", venue="PODS", year=2004)],
                          paper_authors=[(9007, 3)])
            events = []
            db.subscribe(events.append)
            updated = update_papers(
                db, [Paper(pid=9007, title="New", venue="CIKM", year=2006)])
            assert updated == {"dblp": 1}
            assert db.scalar("SELECT venue FROM dblp WHERE pid = 9007") == "CIKM"
            (mutation,) = events
            assert mutation.kind == TUPLES_UPDATED
            assert [row["venue"] for row in mutation.old_rows] == ["PODS"]
            assert [row["venue"] for row in mutation.rows] == ["CIKM"]
            assert [row["year"] for row in mutation.rows] == [2006]

    def test_update_of_unknown_pid_raises(self, tiny_dataset):
        with Database(":memory:") as db:
            load_dataset(db, tiny_dataset)
            with pytest.raises(WorkloadError, match="unknown papers"):
                update_papers(
                    db, [Paper(pid=555_555, title="G", venue="VLDB", year=2000)])


class TestSelectQuery:
    def test_default_shape(self):
        sql = SelectQuery().to_sql()
        assert sql == f"SELECT * FROM {BASE_FROM}"

    def test_where_accepts_predicate_and_string(self):
        query = SelectQuery(columns=["dblp.pid"]).where(equals("dblp.venue", "VLDB"))
        query.where("dblp.year >= 2010")
        sql = query.to_sql()
        assert "(dblp.venue = 'VLDB')" in sql
        assert "AND (dblp.year >= 2010)" in sql

    def test_empty_condition_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery().where("   ")

    def test_order_and_limit(self):
        sql = (SelectQuery(columns=["dblp.pid"], distinct=True)
               .order_by("dblp.year DESC").limit(5).to_sql())
        assert sql.endswith("ORDER BY dblp.year DESC LIMIT 5")
        assert sql.startswith("SELECT DISTINCT")

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery().limit(-1)

    def test_no_columns_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery(columns=[]).to_sql()

    def test_count_query_wrapper(self):
        sql = count_query("dblp.venue = 'VLDB'")
        assert sql.startswith("SELECT COUNT(DISTINCT dblp.pid)")
        assert "dblp.venue = 'VLDB'" in sql

    def test_paper_ids_query_wrapper(self):
        sql = paper_ids_query("dblp.venue = 'VLDB'", limit=10)
        assert "ORDER BY dblp.pid" in sql
        assert sql.endswith("LIMIT 10")


class TestQueryExecution:
    def test_count_matches_ids(self, tiny_db):
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        count = count_matching_papers(tiny_db, predicate)
        ids = matching_paper_ids(tiny_db, predicate)
        assert count == len(ids)
        assert count > 0

    def test_count_whole_table(self, tiny_db):
        assert count_matching_papers(tiny_db) == tiny_db.total_papers()

    def test_author_join_predicate(self, tiny_db):
        aid = tiny_db.scalar("SELECT aid FROM dblp_author LIMIT 1")
        ids = matching_paper_ids(tiny_db, f"dblp_author.aid = {aid}")
        assert ids
        expected = {row["pid"] for row in tiny_db.query(
            "SELECT pid FROM dblp_author WHERE aid = ?", (aid,))}
        assert set(ids) == expected

    def test_impossible_conjunction_returns_zero(self, tiny_db):
        predicate = parse_predicate("dblp.venue = 'VLDB' AND dblp.venue = 'PODS'")
        assert count_matching_papers(tiny_db, predicate) == 0

    def test_ids_ordered_and_limited(self, tiny_db):
        ids = matching_paper_ids(tiny_db, "dblp.year >= 2000", limit=5)
        assert ids == sorted(ids)
        assert len(ids) <= 5

    def test_sql_matches_inmemory_evaluation(self, tiny_db, tiny_dataset):
        """The SQL path and the predicate evaluator agree on matching papers."""
        predicate = parse_predicate("dblp.venue = 'SIGMOD' AND dblp.year >= 2005")
        sql_ids = set(matching_paper_ids(tiny_db, predicate))
        memory_ids = {paper.pid for paper in tiny_dataset.papers
                      if predicate.evaluate({"venue": paper.venue, "year": paper.year})}
        assert sql_ids == memory_ids


class TestStatementAccounting:
    """The executemany accounting fix: per-batch statements + rows_touched."""

    def test_executemany_counts_one_statement_per_batch(self):
        with Database(":memory:") as db:
            before = db.statements_executed
            db.executemany(
                "INSERT INTO dblp (pid, title, venue, year) VALUES (?, ?, ?, ?)",
                [(1, "A", "V", 2000), (2, "B", "V", 2001), (3, "C", "W", 2002)])
            assert db.statements_executed - before == 1

    def test_empty_executemany_counts_nothing(self):
        """An empty batch issues no statement — the historical accounting
        charged a phantom statement for it."""
        with Database(":memory:") as db:
            before = db.statements_executed
            db.executemany(
                "INSERT INTO dblp (pid, title, venue, year) VALUES (?, ?, ?, ?)",
                [])
            assert db.statements_executed == before
            assert db.rows_touched == 0

    def test_rows_touched_tracks_dml_rows(self):
        with Database(":memory:") as db:
            db.executemany(
                "INSERT INTO dblp (pid, title, venue, year) VALUES (?, ?, ?, ?)",
                [(1, "A", "V", 2000), (2, "B", "V", 2001), (3, "C", "W", 2002)])
            assert db.rows_touched == 3
            db.execute("DELETE FROM dblp WHERE year >= 2001")
            assert db.rows_touched == 5
            # SELECTs touch nothing.
            db.query("SELECT * FROM dblp")
            assert db.rows_touched == 5

    def test_load_dataset_skips_empty_batches(self, tiny_dataset):
        """A dataset bulk load charges one statement per non-empty table."""
        from dataclasses import replace
        with Database(":memory:") as db:
            before = db.statements_executed
            load_dataset(db, replace(tiny_dataset, citations=[]))
            # papers + authors + links batches; no citation statement, and
            # table_counts goes through the raw connection (uncounted).
            assert db.statements_executed - before == 3
