"""Unit and integration tests for the SQLite relational substrate."""

from __future__ import annotations

import pytest

from repro.core.predicate import equals, parse_predicate
from repro.exceptions import QueryBuildError, RelationalError, SchemaError
from repro.sqldb import (
    BASE_FROM,
    Database,
    SelectQuery,
    count_matching_papers,
    count_query,
    create_schema,
    drop_schema,
    existing_tables,
    matching_paper_ids,
    paper_ids_query,
    verify_schema,
)
from repro.sqldb import schema as schema_module
from repro.workload.loader import load_dataset


class TestSchema:
    def test_fresh_database_has_all_tables(self):
        with Database(":memory:") as db:
            assert existing_tables(db.connection) == sorted(schema_module.TABLES)
            verify_schema(db.connection)

    def test_drop_then_verify_fails(self):
        with Database(":memory:") as db:
            drop_schema(db.connection)
            with pytest.raises(SchemaError):
                verify_schema(db.connection)

    def test_create_schema_idempotent(self):
        with Database(":memory:") as db:
            create_schema(db.connection)
            create_schema(db.connection)
            verify_schema(db.connection)

    def test_table_counts_empty(self):
        with Database(":memory:") as db:
            counts = db.table_counts()
            assert set(counts) == set(schema_module.TABLES)
            assert all(count == 0 for count in counts.values())


class TestDatabase:
    def test_query_returns_dict_rows(self, tiny_db):
        rows = tiny_db.query("SELECT pid, venue FROM dblp LIMIT 3")
        assert len(rows) == 3
        assert set(rows[0]) == {"pid", "venue"}

    def test_query_one_and_scalar(self, tiny_db):
        row = tiny_db.query_one("SELECT COUNT(*) AS n FROM dblp")
        assert row["n"] > 0
        assert tiny_db.scalar("SELECT COUNT(*) FROM dblp") == row["n"]

    def test_query_one_none_when_empty(self, tiny_db):
        assert tiny_db.query_one("SELECT pid FROM dblp WHERE pid = -1") is None

    def test_count_handles_missing(self, tiny_db):
        assert tiny_db.count("SELECT COUNT(*) FROM dblp WHERE pid = -5") == 0

    def test_invalid_sql_raises_relational_error(self, tiny_db):
        with pytest.raises(RelationalError):
            tiny_db.query("SELECT nonsense FROM nowhere")

    def test_distinct_count_validates_table(self, tiny_db):
        assert tiny_db.distinct_count("dblp", "venue") > 1
        with pytest.raises(RelationalError):
            tiny_db.distinct_count("not_a_table", "x")

    def test_total_papers_matches_dataset(self, tiny_db, tiny_dataset):
        assert tiny_db.total_papers() == len(tiny_dataset.papers)

    def test_load_dataset_counts(self, tiny_dataset):
        with Database(":memory:") as db:
            counts = load_dataset(db, tiny_dataset)
            assert counts["dblp"] == len(tiny_dataset.papers)
            assert counts["author"] == len(tiny_dataset.authors)
            assert counts["citation"] == len(tiny_dataset.citations)
            assert counts["dblp_author"] == len(tiny_dataset.paper_authors)


class TestSelectQuery:
    def test_default_shape(self):
        sql = SelectQuery().to_sql()
        assert sql == f"SELECT * FROM {BASE_FROM}"

    def test_where_accepts_predicate_and_string(self):
        query = SelectQuery(columns=["dblp.pid"]).where(equals("dblp.venue", "VLDB"))
        query.where("dblp.year >= 2010")
        sql = query.to_sql()
        assert "(dblp.venue = 'VLDB')" in sql
        assert "AND (dblp.year >= 2010)" in sql

    def test_empty_condition_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery().where("   ")

    def test_order_and_limit(self):
        sql = (SelectQuery(columns=["dblp.pid"], distinct=True)
               .order_by("dblp.year DESC").limit(5).to_sql())
        assert sql.endswith("ORDER BY dblp.year DESC LIMIT 5")
        assert sql.startswith("SELECT DISTINCT")

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery().limit(-1)

    def test_no_columns_rejected(self):
        with pytest.raises(QueryBuildError):
            SelectQuery(columns=[]).to_sql()

    def test_count_query_wrapper(self):
        sql = count_query("dblp.venue = 'VLDB'")
        assert sql.startswith("SELECT COUNT(DISTINCT dblp.pid)")
        assert "dblp.venue = 'VLDB'" in sql

    def test_paper_ids_query_wrapper(self):
        sql = paper_ids_query("dblp.venue = 'VLDB'", limit=10)
        assert "ORDER BY dblp.pid" in sql
        assert sql.endswith("LIMIT 10")


class TestQueryExecution:
    def test_count_matches_ids(self, tiny_db):
        predicate = parse_predicate("dblp.venue = 'VLDB'")
        count = count_matching_papers(tiny_db, predicate)
        ids = matching_paper_ids(tiny_db, predicate)
        assert count == len(ids)
        assert count > 0

    def test_count_whole_table(self, tiny_db):
        assert count_matching_papers(tiny_db) == tiny_db.total_papers()

    def test_author_join_predicate(self, tiny_db):
        aid = tiny_db.scalar("SELECT aid FROM dblp_author LIMIT 1")
        ids = matching_paper_ids(tiny_db, f"dblp_author.aid = {aid}")
        assert ids
        expected = {row["pid"] for row in tiny_db.query(
            "SELECT pid FROM dblp_author WHERE aid = ?", (aid,))}
        assert set(ids) == expected

    def test_impossible_conjunction_returns_zero(self, tiny_db):
        predicate = parse_predicate("dblp.venue = 'VLDB' AND dblp.venue = 'PODS'")
        assert count_matching_papers(tiny_db, predicate) == 0

    def test_ids_ordered_and_limited(self, tiny_db):
        ids = matching_paper_ids(tiny_db, "dblp.year >= 2000", limit=5)
        assert ids == sorted(ids)
        assert len(ids) <= 5

    def test_sql_matches_inmemory_evaluation(self, tiny_db, tiny_dataset):
        """The SQL path and the predicate evaluator agree on matching papers."""
        predicate = parse_predicate("dblp.venue = 'SIGMOD' AND dblp.year >= 2005")
        sql_ids = set(matching_paper_ids(tiny_db, predicate))
        memory_ids = {paper.pid for paper in tiny_dataset.papers
                      if predicate.evaluate({"venue": paper.venue, "year": paper.year})}
        assert sql_ids == memory_ids
