"""Delete-heavy churn down to an empty relation: both engines must agree.

The regression this file pins down: the replay driver's liveness fallback
used to force an INSERT whenever deletes/updates found no live pid — even
for a mix with ``insert_weight=0`` — silently resurrecting a relation the
delete-churn mix had deliberately drained.  The fallback now degrades to a
READ, and everything downstream of an empty joined view (fresh Top-K, the
serving front door, cached-answer repair sweeps, the replay itself) must
behave identically on SQLite and the in-memory engine.
"""

from __future__ import annotations

import pytest

from repro.backend import BACKEND_NAMES
from repro.exceptions import ServingError
from repro.serving import (
    INSERT,
    READ,
    ReplayConfig,
    ReplayDriver,
    TopKServer,
    fresh_top_k,
)
from repro.workload.synthetic import SyntheticConfig, synthetic_profile_factory

SYN = SyntheticConfig(n_papers=90, n_authors=30, width=2,
                      venue_cardinality=6, extra_cardinality=5,
                      correlation=0.3, seed=13)

#: Delete-churn expressed through the raw weight knobs (not the named mix),
#: so the regression is locked at the driver level independent of the
#: catalogue.
CHURN = dict(users=10, requests=150, k=4, seed=11,
             read_weight=3.0, update_weight=0.3, insert_weight=0.0,
             delete_weight=8.0, data_update_weight=0.7)


@pytest.fixture(params=sorted(BACKEND_NAMES))
def backend_name(request):
    return request.param


def make_world(backend_name, **overrides):
    config = {**CHURN, **overrides}
    driver = ReplayDriver(ReplayConfig(**config),
                          profile_factory=synthetic_profile_factory(SYN))
    db = driver.build_world(SYN, backend=backend_name)
    return driver, db


def test_zero_insert_weight_never_schedules_inserts(backend_name):
    driver, db = make_world(backend_name)
    try:
        ops = driver.schedule(db)
        kinds = [op.kind for op in ops]
        assert INSERT not in kinds
        # The drain happens well before the schedule ends, so the liveness
        # fallback had to fire — and it must have degraded to reads.
        deletes = sum(1 for kind in kinds if kind == "delete")
        assert deletes <= SYN.n_papers
        assert kinds.count(READ) > 0
        assert kinds[-1] != INSERT
    finally:
        db.close()


def test_churn_to_empty_replays_identically_on_both_backends():
    outcomes = {}
    for backend_name in sorted(BACKEND_NAMES):
        driver, db = make_world(backend_name)
        server = TopKServer(db, capacity=6)
        try:
            report = driver.run(server, driver.schedule(db), verify=True)
            outcomes[backend_name] = (
                report.ops, report.reads, report.inserts, report.deletes,
                report.data_updates, report.verified_results,
                db.total_papers())
        finally:
            server.close()
            db.close()
    values = list(outcomes.values())
    assert all(value == values[0] for value in values[1:]), outcomes
    assert values[0][2] == 0  # inserts
    assert values[0][3] > 0   # deletes


def test_top_k_over_a_fully_drained_relation_is_empty(backend_name):
    driver, db = make_world(backend_name)
    server = TopKServer(db, capacity=6)
    try:
        driver.prepare(db)
        uid = driver.config.uids()[0]
        warm = server.top_k(uid, 4)
        assert warm.ranking  # papers exist before the drain
        server.delete_tuples(db.paper_ids())
        assert db.total_papers() == 0
        served = server.top_k(uid, 4)
        assert list(served.ranking) == []
        assert fresh_top_k(db, uid, 4) == []
    finally:
        server.close()
        db.close()


def test_repair_sweep_with_zero_surviving_rows(backend_name):
    """Deleting every row sweeps the cached answers without diverging."""
    driver, db = make_world(backend_name)
    server = TopKServer(db, capacity=6)
    try:
        driver.prepare(db)
        uids = driver.config.uids()[:4]
        for uid in uids:
            server.top_k(uid, 4)
        server.delete_tuples(db.paper_ids())
        for uid in uids:
            assert list(server.top_k(uid, 4).ranking) == []
            assert fresh_top_k(db, uid, 4) == []
        stats = server.stats()["results"]
        # Every cached answer was either repaired down or invalidated —
        # none may survive claiming rows that no longer exist.
        assert (stats["repairs"] + stats["data_invalidations"]
                + stats["data_spared"]) > 0
    finally:
        server.close()
        db.close()


def test_schedule_on_an_empty_world_raises_on_both_backends():
    errors = {}
    for backend_name in sorted(BACKEND_NAMES):
        driver, db = make_world(backend_name)
        try:
            db.delete_papers(db.paper_ids())
            with pytest.raises(ServingError) as excinfo:
                driver.schedule(db)
            errors[backend_name] = type(excinfo.value).__name__
        finally:
            db.close()
    assert len(set(errors.values())) == 1
