"""Concurrency guarantees of :mod:`repro.telemetry` (satellite: ISSUE 7).

Three families of guarantees, proven rather than assumed:

* **exact instruments** — counters (and histogram sample counts) lose no
  increments under real thread contention, property-tested over arbitrary
  per-thread workloads with Hypothesis;
* **span integrity** — concurrent traced requests never contaminate each
  other's trees (contextvars isolation per thread), and the cluster's
  parallel fan-out attaches every worker-thread span to the broadcasting
  request's root;
* **bounded, untorn traces** — however many threads record, the trace ring
  never exceeds its capacity and only complete span trees are ever
  observable.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.core.preference import UserProfile
from repro.serving import ShardedTopKServer
from repro.sqldb.database import Database
from repro.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    TraceBuffer,
    span,
)
from repro.workload.dblp import DblpConfig, Paper, generate_dblp
from repro.workload.loader import load_dataset

VENUES = ("VLDB", "SIGMOD", "PVLDB", "ICDE", "PODS", "CIKM")


def _run_all(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# -- exact instruments under contention ---------------------------------------


class TestExactCounters:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200),
                    min_size=2, max_size=6))
    def test_counter_loses_no_increment(self, per_thread):
        registry = MetricsRegistry()
        counter = registry.counter("telemetry.test.events")
        barrier = threading.Barrier(len(per_thread))

        def work(amount):
            barrier.wait()
            for _ in range(amount):
                counter.inc()

        _run_all([threading.Thread(target=work, args=(amount,))
                  for amount in per_thread])
        assert counter.value == sum(per_thread)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100),
                    min_size=2, max_size=4))
    def test_histogram_counts_every_sample(self, per_thread):
        registry = MetricsRegistry()
        histogram = registry.histogram("telemetry.test.latency")
        barrier = threading.Barrier(len(per_thread))

        def work(amount):
            barrier.wait()
            for index in range(amount):
                histogram.record_us(1 + index)

        _run_all([threading.Thread(target=work, args=(amount,))
                  for amount in per_thread])
        assert histogram.count == sum(per_thread)
        assert histogram.summary()["count"] == sum(per_thread)

    def test_get_or_create_races_to_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            counter = registry.counter("telemetry.test.races")
            counter.inc()
            seen.append(counter)

        _run_all([threading.Thread(target=work) for _ in range(8)])
        assert len(set(map(id, seen))) == 1
        assert registry.counter("telemetry.test.races").value == 8


# -- span isolation across threads --------------------------------------------


class TestSpanIsolation:
    def test_concurrent_roots_stay_separate_trees(self):
        buffer = TraceBuffer(capacity=64)
        barrier = threading.Barrier(6)

        def request(index):
            barrier.wait()
            with Span(f"request_{index}", sink=buffer) as root:
                root.annotate("index", index)
                with span("stage_a"):
                    with span("stage_b"):
                        pass
                with span("stage_c"):
                    pass

        _run_all([threading.Thread(target=request, args=(index,))
                  for index in range(6)])
        records = buffer.snapshot()
        assert len(records) == 6
        for record in records:
            index = record.annotation("index")
            assert record.name == f"request_{index}"
            # Each tree holds exactly its own stages, never a neighbour's.
            assert sorted(child.name for child in record.children) == [
                "stage_a", "stage_c"]
            assert record.find("stage_b") is not None
            assert record.span_count() == 4

    def test_parallel_fanout_attaches_worker_spans_to_root(self):
        db = Database(":memory:")
        load_dataset(db, generate_dblp(
            DblpConfig(n_papers=150, n_authors=50, n_venues=6, seed=7)))
        telemetry = Telemetry()
        try:
            with ShardedTopKServer(db, shards=3, capacity=8,
                                   parallel_fanout=True) as cluster:
                telemetry.observe(cluster)
                for uid in range(1, 7):
                    profile = UserProfile(uid=uid)
                    profile.add_quantitative(
                        f"dblp.venue = '{VENUES[uid % len(VENUES)]}'", 0.9)
                    profile.add_quantitative(
                        "dblp.year >= 2008 AND dblp.year <= 2009", 0.5)
                    cluster.update_profile(uid, profile)
                telemetry.traces.clear()
                for round_ in range(3):
                    cluster.insert_tuples(
                        [Paper(pid=91_000 + round_, title="fanout",
                               venue="VLDB", year=2012)],
                        paper_authors=[(91_000 + round_, 1)])
                records = telemetry.traces.snapshot()
                assert len(records) == 3
                for record in records:
                    assert record.name == "cluster.tuples_inserted"
                    handled = [child for child in record.children
                               if child.name == "server.on_data_mutation"]
                    # Every shard's pool-thread handler landed under the
                    # broadcasting request's root, none went astray.
                    assert len(handled) == cluster.shards
        finally:
            db.close()


# -- bounded, untorn trace ring -----------------------------------------------


class TestTraceBufferUnderContention:
    def test_ring_never_exceeds_capacity(self):
        buffer = TraceBuffer(capacity=16, slow_capacity=4, slow_threshold=0.0)
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                if len(buffer) > 16 or len(buffer.slow()) > 4:
                    violations.append(buffer.stats())

        def writer(index):
            for request in range(200):
                with Span(f"w{index}_r{request}", sink=buffer):
                    with span("inner"):
                        pass

        watcher = threading.Thread(target=reader)
        watcher.start()
        _run_all([threading.Thread(target=writer, args=(index,))
                  for index in range(4)])
        stop.set()
        watcher.join()
        assert not violations
        stats = buffer.stats()
        assert stats["recorded"] == 800
        assert stats["retained"] == 16
        assert stats["slow_recorded"] == 800
        assert stats["slow_retained"] == 4

    def test_no_torn_spans_visible(self):
        buffer = TraceBuffer(capacity=32)
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for record in buffer.snapshot():
                    # A complete tree always renders and carries its child.
                    if record.find("inner") is None or record.seconds < 0:
                        torn.append(record)

        def writer(index):
            for request in range(300):
                with Span(f"w{index}_r{request}", sink=buffer) as root:
                    root.annotate("writer", index)
                    with span("inner"):
                        pass

        watcher = threading.Thread(target=reader)
        watcher.start()
        _run_all([threading.Thread(target=writer, args=(index,))
                  for index in range(3)])
        stop.set()
        watcher.join()
        assert not torn
