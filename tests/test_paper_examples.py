"""End-to-end tests replaying the paper's worked examples.

* Example 6 / Tables 8–9: the car-dealership ranking with combined
  intensities 0.92 / 0.9 / 0.6.
* Section 2.5 / Table 5: the Preference SQL comparison — the HYPRE ranking
  returns t1, t2, t3 (Preference SQL returns t1, t3, t2).
* Section 3.3: the DBLP example graph with preferences P1..P8.
* Section 4.6 / Table 7: the rewritten query for uid=2.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import make_preferences
from repro.core.hypre import build_hypre_graph
from repro.core.intensity import combine_and, f_and
from repro.core.predicate import parse_predicate
from repro.graphstore import CYCLE, DISCARD, PREFERS
from repro.sqldb.enhancer import mixed_clause


def rank_rows(rows, preferences):
    """Rank in-memory rows by the combined intensity of matched preferences."""
    ranked = []
    for row in rows:
        matched = [pref.intensity for pref in preferences
                   if pref.predicate.evaluate(row)]
        score = combine_and(matched) if matched else 0.0
        ranked.append((row["id"], score))
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked


class TestDealershipExample:
    def test_table9_combined_intensities(self, dealership_rows, dealership_preferences):
        ranked = dict(rank_rows(dealership_rows, dealership_preferences))
        assert ranked["t1"] == pytest.approx(0.92)
        assert ranked["t2"] == pytest.approx(0.9)
        assert ranked["t3"] == pytest.approx(0.6)

    def test_expected_order_t1_t2_t3(self, dealership_rows, dealership_preferences):
        """Section 2.5: HYPRE ranks t2 above t3, unlike Preference SQL."""
        order = [row_id for row_id, _ in
                 rank_rows(dealership_rows, dealership_preferences)]
        assert order == ["t1", "t2", "t3"]

    def test_intensity_composition_steps(self):
        """The two-step composition spelled out in Example 6."""
        assert f_and(0.8, 0.5) == pytest.approx(0.9)
        assert f_and(f_and(0.8, 0.5), 0.2) == pytest.approx(0.92)
        assert f_and(0.5, 0.2) == pytest.approx(0.6)

    def test_tuple_matching_matches_table8(self, dealership_rows, dealership_preferences):
        price, mileage, make = dealership_preferences
        t1, t2, t3 = dealership_rows
        assert price.predicate.evaluate(t1) and mileage.predicate.evaluate(t1)
        assert make.predicate.evaluate(t1)
        assert price.predicate.evaluate(t2) and mileage.predicate.evaluate(t2)
        assert not make.predicate.evaluate(t2)
        assert not price.predicate.evaluate(t3)
        assert mileage.predicate.evaluate(t3) and make.predicate.evaluate(t3)


class TestSection33Graph:
    """The incremental DBLP example graph of Figures 4–8."""

    def test_final_graph_contents(self, dblp_profile):
        hypre, report = build_hypre_graph(dblp_profile)
        # Nodes P1..P8 of Figure 8: 5 quantitative + 3 created by qualitative
        # preferences (the two VLDB-year predicates and the bare VLDB node).
        assert len(hypre.user_node_ids(1)) == 8
        assert report.cycle_edges == 0
        assert report.discarded_edges == 0
        assert len(hypre.qualitative_edges(1, (PREFERS,))) == 3

    def test_negative_preference_stored(self, dblp_profile):
        hypre, _ = build_hypre_graph(dblp_profile)
        node = hypre.find_node_id(1, "venue = 'INFOCOM'")
        assert hypre.intensity_of(node) == -1.0

    def test_reused_node_for_p3(self, dblp_profile):
        """The 'year >= 2009' node is shared between P3 and the set preference."""
        hypre, _ = build_hypre_graph(dblp_profile)
        node = hypre.find_node_id(1, "year >= 2009")
        assert node is not None
        assert hypre.intensity_of(node) == pytest.approx(0.8)
        # It is the right endpoint of exactly one PREFERS edge.
        incoming = [edge for edge in hypre.qualitative_edges(1, (PREFERS,))
                    if edge.target == node]
        assert len(incoming) == 1

    def test_vldb_node_beats_both_rivals(self, dblp_profile):
        hypre, _ = build_hypre_graph(dblp_profile)
        vldb = hypre.intensity_of(hypre.find_node_id(1, "venue = 'VLDB'"))
        sigmod = hypre.intensity_of(hypre.find_node_id(1, "venue = 'SIGMOD'"))
        recent = hypre.intensity_of(hypre.find_node_id(1, "year >= 2009"))
        assert vldb >= sigmod
        assert vldb >= recent

    def test_edge_intensities_preserved(self, dblp_profile):
        hypre, _ = build_hypre_graph(dblp_profile)
        strengths = sorted(edge.get("intensity")
                           for edge in hypre.qualitative_edges(1, (PREFERS,)))
        assert strengths == pytest.approx([0.2, 0.3, 0.8])


class TestTable7QueryRewrite:
    def test_mixed_clause_shape(self):
        preferences = [
            ("dblp.venue = 'INFOCOM'", 0.23),
            ("dblp.venue = 'PODS'", 0.14),
            ("dblp_author.aid = 128", 0.19),
            ("dblp_author.aid = 116", 0.14),
        ]
        predicate, _ = mixed_clause(preferences)
        sql = predicate.to_sql()
        # Section 4.6: venues OR-ed, authors OR-ed, the two groups AND-ed.
        assert sql.count(" AND ") == 1
        assert sql.count(" OR ") == 2

    def test_clause_evaluates_like_the_paper(self):
        preferences = [
            ("dblp.venue = 'INFOCOM'", 0.23),
            ("dblp.venue = 'PODS'", 0.14),
            ("dblp_author.aid = 128", 0.19),
            ("dblp_author.aid = 116", 0.14),
        ]
        predicate, _ = mixed_clause(preferences)
        assert predicate.evaluate({"dblp.venue": "PODS", "dblp_author.aid": 128})
        assert not predicate.evaluate({"dblp.venue": "PODS", "dblp_author.aid": 999})
        assert not predicate.evaluate({"dblp.venue": "VLDB", "dblp_author.aid": 128})


class TestConflictExamples:
    def test_cycle_example_from_section_623(self):
        """A preferred over B and B preferred over A -> second edge is a CYCLE."""
        from repro.core.preference import UserProfile

        profile = UserProfile(uid=4)
        profile.add_qualitative("a = 'A'", "a = 'B'", 0.5)
        profile.add_qualitative("a = 'B'", "a = 'A'", 0.5)
        hypre, report = build_hypre_graph(profile)
        assert report.cycle_edges == 1
        assert len(hypre.qualitative_edges(4, (CYCLE,))) == 1

    def test_incompatible_intensities_example(self):
        """Connected nodes with contradictory user scores -> DISCARD edge."""
        from repro.core.preference import UserProfile

        profile = UserProfile(uid=5)
        profile.add_quantitative("a = 'A'", 0.1)
        profile.add_quantitative("a = 'B'", 0.9)
        profile.add_qualitative("a = 'A'", "a = 'C'", 0.1)
        profile.add_qualitative("a = 'D'", "a = 'B'", 0.1)
        profile.add_qualitative("a = 'A'", "a = 'B'", 0.5)
        hypre, report = build_hypre_graph(profile)
        assert report.discarded_edges == 1
        assert len(hypre.qualitative_edges(5, (DISCARD,))) == 1


class TestMovieRelationExample:
    """Tables 3/4 — the movie relation and its intensity column."""

    MOVIES = [
        {"movie_id": "m1", "genre": "drama", "year": 1942, "director": "M. Curtiz"},
        {"movie_id": "m2", "genre": "horror", "year": 1960, "director": "A. Hitchock"},
        {"movie_id": "m3", "genre": "drama", "year": 1993, "director": "S. Spielberg"},
        {"movie_id": "m4", "genre": "comedy", "year": 1954, "director": "M. Curtiz"},
        {"movie_id": "m5", "genre": "comedy", "year": 2011, "director": "S. Spielberg"},
        {"movie_id": "m6", "genre": "thriller", "year": 2013, "director": "L. Brand"},
    ]
    SCORES = {"m1": 0.3, "m2": 0.9, "m3": 0.0, "m4": 0.3, "m5": 0.6}

    def test_example1_total_order(self):
        """m2 preferred over m5, which is preferred over m1 and m4."""
        ranked = sorted(self.SCORES, key=lambda movie: -self.SCORES[movie])
        assert ranked[0] == "m2"
        assert ranked[1] == "m5"
        assert set(ranked[2:4]) == {"m1", "m4"}

    def test_example2_equally_preferred(self):
        assert self.SCORES["m1"] == self.SCORES["m4"]

    def test_example3_indifference(self):
        assert self.SCORES["m3"] == 0.0

    def test_comedy_over_drama_preference(self):
        """'I like comedies more than dramas' selects {m4, m5} over {m1, m3}."""
        comedies = parse_predicate("genre = 'comedy'")
        dramas = parse_predicate("genre = 'drama'")
        comedy_ids = {movie["movie_id"] for movie in self.MOVIES
                      if comedies.evaluate(movie)}
        drama_ids = {movie["movie_id"] for movie in self.MOVIES if dramas.evaluate(movie)}
        assert comedy_ids == {"m4", "m5"}
        assert drama_ids == {"m1", "m3"}
