"""Unit tests for the intensity algebra (Equations 4.1–4.4, Propositions 1/2/6)."""

from __future__ import annotations

import math

import pytest

from repro.core.intensity import (
    LEFT,
    RIGHT,
    clamp,
    combine_and,
    combine_or,
    compute_intensity,
    f_and,
    f_dominant,
    f_or,
    intensity_left,
    intensity_right,
    is_indifferent,
    is_negative,
    min_preferences_to_beat,
    sign,
    validate_qualitative,
    validate_quantitative,
)
from repro.exceptions import IntensityRangeError


class TestValidation:
    @pytest.mark.parametrize("value", [-1.0, -0.5, 0.0, 0.5, 1.0])
    def test_quantitative_accepts_range(self, value):
        assert validate_quantitative(value) == value

    @pytest.mark.parametrize("value", [-1.01, 1.01, 5, float("nan")])
    def test_quantitative_rejects_out_of_range(self, value):
        with pytest.raises(IntensityRangeError):
            validate_quantitative(value)

    @pytest.mark.parametrize("value", [0.0, 0.3, 1.0])
    def test_qualitative_accepts_range(self, value):
        assert validate_qualitative(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_qualitative_rejects_out_of_range(self, value):
        with pytest.raises(IntensityRangeError):
            validate_qualitative(value)

    def test_clamp(self):
        assert clamp(2.0) == 1.0
        assert clamp(-2.0) == -1.0
        assert clamp(0.25) == 0.25

    def test_sign(self):
        assert sign(0.5) == 1
        assert sign(-0.5) == -1
        assert sign(0.0) == 0

    def test_negative_and_indifferent_helpers(self):
        assert is_negative(-0.2)
        assert not is_negative(0.2)
        assert is_indifferent(0.0)
        assert not is_indifferent(0.1)


class TestNodeIntensityFunctions:
    """Properties required by Section 4.4 for Eq. 4.1 / 4.2."""

    def test_left_is_at_least_right_value(self):
        assert intensity_left(0.5, 0.4) >= 0.4

    def test_right_is_at_most_left_value(self):
        assert intensity_right(0.5, 0.4) <= 0.4

    def test_zero_qualitative_means_equal(self):
        assert intensity_left(0.0, 0.37) == pytest.approx(0.37)
        assert intensity_right(0.0, 0.37) == pytest.approx(0.37)

    def test_left_never_exceeds_one(self):
        assert intensity_left(1.0, 0.9) == 1.0

    def test_right_never_below_minus_one(self):
        assert intensity_right(1.0, -0.9) == -1.0

    def test_stronger_qualitative_means_bigger_gap(self):
        weak = intensity_left(0.1, 0.4)
        strong = intensity_left(0.9, 0.4)
        assert strong > weak

    def test_negative_quantitative_left(self):
        # A negative score becomes less negative on the preferred side.
        value = intensity_left(0.5, -0.4)
        assert -0.4 <= value <= 0.0

    def test_negative_quantitative_right(self):
        value = intensity_right(0.5, -0.4)
        assert value <= -0.4

    def test_compute_intensity_dispatch(self):
        assert compute_intensity(LEFT, 0.3, 0.5) == intensity_left(0.3, 0.5)
        assert compute_intensity(RIGHT, 0.3, 0.5) == intensity_right(0.3, 0.5)
        with pytest.raises(ValueError):
            compute_intensity("MIDDLE", 0.3, 0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(IntensityRangeError):
            intensity_left(-0.1, 0.5)
        with pytest.raises(IntensityRangeError):
            intensity_left(0.5, 1.5)


class TestCombinationFunctions:
    def test_f_and_matches_paper_example(self):
        # Example 6 / Table 9: f_and(0.8, 0.5) = 0.9 and f_and(0.9, 0.2) = 0.92.
        assert f_and(0.8, 0.5) == pytest.approx(0.9)
        assert f_and(f_and(0.8, 0.5), 0.2) == pytest.approx(0.92)
        assert f_and(0.5, 0.2) == pytest.approx(0.6)

    def test_f_and_is_inflationary_for_positive_inputs(self):
        assert f_and(0.3, 0.4) >= 0.4
        assert f_and(0.3, 0.4) >= 0.3

    def test_f_and_identity_is_zero(self):
        assert f_and(0.42, 0.0) == pytest.approx(0.42)

    def test_f_and_commutative(self):
        assert f_and(0.3, 0.7) == pytest.approx(f_and(0.7, 0.3))

    def test_f_and_associative_proposition1(self):
        a, b, c = 0.6, 0.3, 0.1
        assert f_and(a, f_and(b, c)) == pytest.approx(f_and(f_and(a, b), c))

    def test_f_or_is_reserved(self):
        value = f_or(0.2, 0.8)
        assert 0.2 <= value <= 0.8
        assert value == pytest.approx(0.5)

    def test_f_or_order_dependence_proposition2(self):
        p1, p2, p3 = 0.9, 0.5, 0.1
        first = f_or(p1, f_or(p2, p3))
        second = f_or(p2, f_or(p1, p3))
        third = f_or(p3, f_or(p1, p2))
        assert first >= second >= third

    def test_f_dominant(self):
        assert f_dominant(0.3, 0.8) == 0.8

    def test_combine_and_order_independent(self):
        values = [0.5, 0.2, 0.7]
        assert combine_and(values) == pytest.approx(combine_and(list(reversed(values))))
        assert combine_and(values) == pytest.approx(1 - 0.5 * 0.8 * 0.3)

    def test_combine_and_single_value(self):
        assert combine_and([0.4]) == pytest.approx(0.4)

    def test_combine_or_left_fold(self):
        assert combine_or([0.8, 0.4]) == pytest.approx(0.6)
        assert combine_or([0.8, 0.4, 0.2]) == pytest.approx(f_or(f_or(0.8, 0.4), 0.2))

    def test_empty_combinations_rejected(self):
        with pytest.raises(ValueError):
            combine_and([])
        with pytest.raises(ValueError):
            combine_or([])


class TestProposition6:
    def test_formula(self):
        target, base = 0.9, 0.5
        expected = math.log(1 - target) / math.log(1 - base)
        assert min_preferences_to_beat(target, base) == pytest.approx(expected)

    def test_enough_copies_actually_beat_the_target(self):
        target, base = 0.9, 0.5
        needed = math.ceil(min_preferences_to_beat(target, base))
        assert combine_and([base] * needed) >= target
        assert combine_and([base] * (needed - 1)) < target

    def test_base_not_smaller_than_target_needs_one(self):
        assert min_preferences_to_beat(0.5, 0.5) == 1.0
        assert min_preferences_to_beat(0.4, 0.9) == 1.0

    def test_zero_base_never_beats(self):
        assert min_preferences_to_beat(0.5, 0.0) == math.inf

    def test_saturated_target(self):
        assert min_preferences_to_beat(1.0, 0.5) == math.inf
        assert min_preferences_to_beat(1.0, 1.0) == 1.0
