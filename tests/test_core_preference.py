"""Unit tests for preference data types and user profiles."""

from __future__ import annotations

import pytest

from repro.core.preference import (
    ProfileRegistry,
    QualitativePreference,
    QuantitativePreference,
    UserProfile,
)
from repro.exceptions import IntensityRangeError, ProfileError


class TestQuantitativePreference:
    def test_construction_from_text(self):
        pref = QuantitativePreference(1, "dblp.venue='VLDB'", 0.8)
        assert pref.predicate_sql == "dblp.venue = 'VLDB'"
        assert pref.intensity == 0.8
        assert not pref.is_negative

    def test_negative_preference(self):
        pref = QuantitativePreference(1, "venue = 'INFOCOM'", -1.0)
        assert pref.is_negative
        assert not pref.is_indifferent

    def test_indifference(self):
        assert QuantitativePreference(1, "venue = 'X'", 0.0).is_indifferent

    def test_out_of_range_rejected(self):
        with pytest.raises(IntensityRangeError):
            QuantitativePreference(1, "venue = 'X'", 1.5)

    def test_with_intensity_returns_copy(self):
        pref = QuantitativePreference(1, "venue = 'X'", 0.5)
        changed = pref.with_intensity(0.9)
        assert changed.intensity == 0.9
        assert pref.intensity == 0.5
        assert changed.predicate_sql == pref.predicate_sql

    def test_equality_and_hash(self):
        first = QuantitativePreference(1, "venue='X'", 0.5)
        second = QuantitativePreference(1, "venue = 'X'", 0.5)
        assert first == second
        assert hash(first) == hash(second)


class TestQualitativePreference:
    def test_construction(self):
        pref = QualitativePreference(1, "venue='VLDB'", "venue='SIGMOD'", 0.3)
        assert pref.left_sql == "venue = 'VLDB'"
        assert pref.right_sql == "venue = 'SIGMOD'"
        assert not pref.is_equality

    def test_equality_preference(self):
        assert QualitativePreference(1, "a=1", "a=2", 0.0).is_equality

    def test_normalised_keeps_positive(self):
        pref = QualitativePreference(1, "a=1", "a=2", 0.4)
        assert pref.normalised() is pref

    def test_normalised_swaps_negative(self):
        """Proposition 7: 'A over B' with -x equals 'B over A' with +x."""
        pref = QualitativePreference(1, "a=1", "a=2", -0.4)
        fixed = pref.normalised()
        assert fixed.left_sql == "a = 2"
        assert fixed.right_sql == "a = 1"
        assert fixed.intensity == pytest.approx(0.4)

    def test_normalised_rejects_out_of_range(self):
        with pytest.raises(IntensityRangeError):
            QualitativePreference(1, "a=1", "a=2", 1.4).normalised()

    def test_reversed(self):
        pref = QualitativePreference(1, "a=1", "a=2", 0.4)
        swapped = pref.reversed()
        assert swapped.left_sql == "a = 2"
        assert swapped.intensity == pytest.approx(-0.4)
        assert swapped.reversed() == pref


class TestUserProfile:
    def test_add_and_count(self):
        profile = UserProfile(uid=7)
        profile.add_quantitative("venue='A'", 0.5)
        profile.add_qualitative("venue='A'", "venue='B'", 0.2)
        assert len(profile) == 2
        assert not profile.is_empty()

    def test_positive_and_negative_views(self):
        profile = UserProfile(uid=1)
        profile.add_quantitative("venue='A'", 0.5)
        profile.add_quantitative("venue='B'", -0.5)
        profile.add_quantitative("venue='C'", 0.0)
        assert len(profile.positive_quantitative()) == 1
        assert len(profile.negative_quantitative()) == 1

    def test_ordered_quantitative_descending(self):
        profile = UserProfile(uid=1)
        profile.add_quantitative("venue='A'", 0.2)
        profile.add_quantitative("venue='B'", 0.9)
        profile.add_quantitative("venue='C'", 0.5)
        ordered = profile.ordered_quantitative()
        assert [pref.intensity for pref in ordered] == [0.9, 0.5, 0.2]

    def test_ordered_quantitative_ascending(self):
        profile = UserProfile(uid=1)
        profile.add_quantitative("venue='A'", 0.2)
        profile.add_quantitative("venue='B'", 0.9)
        ordered = profile.ordered_quantitative(descending=False)
        assert [pref.intensity for pref in ordered] == [0.2, 0.9]

    def test_predicates_deduplicated(self):
        profile = UserProfile(uid=1)
        profile.add_quantitative("venue='A'", 0.5)
        profile.add_qualitative("venue='A'", "venue='B'", 0.2)
        assert profile.predicates() == ["venue = 'A'", "venue = 'B'"]

    def test_extend_checks_uid(self):
        profile = UserProfile(uid=1)
        stranger = QuantitativePreference(2, "venue='A'", 0.5)
        with pytest.raises(ProfileError):
            profile.extend(quantitative=[stranger])

    def test_extend_appends_matching(self):
        profile = UserProfile(uid=1)
        profile.extend(
            quantitative=[QuantitativePreference(1, "venue='A'", 0.5)],
            qualitative=[QualitativePreference(1, "venue='A'", "venue='B'", 0.1)])
        assert len(profile) == 2


class TestProfileRegistry:
    def test_get_or_create(self):
        registry = ProfileRegistry()
        profile = registry.get_or_create(3)
        assert registry.get_or_create(3) is profile
        assert 3 in registry
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(ProfileError):
            ProfileRegistry().get(42)

    def test_add_replaces(self):
        registry = ProfileRegistry()
        registry.add(UserProfile(uid=1))
        replacement = UserProfile(uid=1)
        replacement.add_quantitative("venue='A'", 0.4)
        registry.add(replacement)
        assert len(registry.get(1)) == 1

    def test_user_ids_sorted(self):
        registry = ProfileRegistry()
        for uid in (5, 1, 3):
            registry.get_or_create(uid)
        assert registry.user_ids() == [1, 3, 5]

    def test_preference_counts(self):
        registry = ProfileRegistry()
        profile = registry.get_or_create(1)
        profile.add_quantitative("venue='A'", 0.4)
        registry.get_or_create(2)
        assert registry.preference_counts() == {1: 1, 2: 0}
