"""Tests for the deterministic multi-user replay driver."""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError
from repro.serving import (
    DATA_UPDATE,
    DELETE,
    INSERT,
    MUTATION_KINDS,
    READ,
    UPDATE,
    ReplayConfig,
    ReplayDriver,
    TopKServer,
)
from repro.workload.dblp import DblpConfig

DBLP = DblpConfig(n_papers=200, n_authors=60, n_venues=8, seed=7)
CONFIG = ReplayConfig(users=10, requests=60, k=4, seed=3)


@pytest.fixture(scope="module")
def driver():
    return ReplayDriver(CONFIG)


class TestSchedule:
    def test_deterministic_across_identical_worlds(self, driver):
        first_db = driver.build_world(DBLP)
        second_db = driver.build_world(DBLP)
        try:
            assert driver.schedule(first_db) == driver.schedule(second_db)
        finally:
            first_db.close()
            second_db.close()

    def test_contains_every_op_kind(self, driver):
        db = driver.build_world(DBLP)
        try:
            kinds = {op.kind for op in driver.schedule(db)}
        finally:
            db.close()
        assert kinds == {READ, UPDATE, INSERT, DELETE, DATA_UPDATE}

    def test_deletes_target_live_pids_only(self, driver):
        """A pid is deleted at most once, and only while it exists."""
        db = driver.build_world(DBLP)
        try:
            ops = driver.schedule(db)
            initial = set(db.paper_ids())
        finally:
            db.close()
        alive = set(initial)
        for op in ops:
            if op.kind == INSERT:
                alive.update(paper.pid for paper in op.papers)
            elif op.kind == DELETE:
                for pid in op.pids:
                    assert pid in alive
                    alive.remove(pid)
            elif op.kind == DATA_UPDATE:
                assert all(paper.pid in alive for paper in op.papers)

    def test_zipf_skew_concentrates_reads(self, driver):
        db = driver.build_world(DBLP)
        try:
            ops = driver.schedule(db)
        finally:
            db.close()
        reads_per_uid: dict = {}
        for op in ops:
            if op.kind == READ:
                reads_per_uid[op.uid] = reads_per_uid.get(op.uid, 0) + 1
        hottest = max(reads_per_uid.values())
        # The hottest user dominates a uniform share by construction.
        assert hottest > len(ops) / CONFIG.users

    def test_rejects_degenerate_config(self):
        with pytest.raises(ServingError):
            ReplayDriver(ReplayConfig(users=0))

    def test_rejects_invalid_weights(self):
        # random.choices samples nonsense for negative weights and raises a
        # cryptic error for all-zero ones — the driver fails loudly instead.
        with pytest.raises(ServingError, match="non-negative"):
            ReplayDriver(ReplayConfig(delete_weight=-1.0))
        with pytest.raises(ServingError, match="not all be zero"):
            ReplayDriver(ReplayConfig(
                read_weight=0.0, update_weight=0.0, insert_weight=0.0,
                delete_weight=0.0, data_update_weight=0.0))


class TestReplay:
    def test_equivalence_after_every_mutation(self, driver):
        """The acceptance equivalence test: every answer the server keeps
        materialised equals a from-scratch recomputation after every single
        mutation in the replay (verify raises on the first divergence)."""
        db = driver.build_world(DBLP)
        try:
            with TopKServer(db, capacity=6) as server:
                report = driver.run(server, driver.schedule(db), verify=True)
        finally:
            db.close()
        assert report.verified_results > 0
        assert report.inserts > 0 and report.updates > 0
        # The full update spectrum is exercised, not just inserts.
        assert report.deletes > 0 and report.data_updates > 0

    def test_serving_beats_baseline_and_hits_are_free(self, driver):
        serving_db = driver.build_world(DBLP)
        baseline_db = driver.build_world(DBLP)
        try:
            with TopKServer(serving_db, capacity=6) as server:
                serving = driver.run(server, driver.schedule(serving_db))
            baseline = driver.run_baseline(baseline_db,
                                           driver.schedule(baseline_db))
        finally:
            serving_db.close()
            baseline_db.close()
        assert serving.read_hits > 0
        assert serving.zero_sql_reads == serving.read_hits
        assert serving.sql_statements < baseline.sql_statements
        assert baseline.read_hits == 0

    def test_mutation_events_record_partial_invalidation(self, driver):
        db = driver.build_world(DBLP)
        try:
            with TopKServer(db, capacity=6) as server:
                report = driver.run(server, driver.schedule(db))
        finally:
            db.close()
        assert {event["kind"] for event in report.mutation_events} == set(
            MUTATION_KINDS)
        # Inserts touch one venue, so they always invalidate a strict subset
        # of a multi-entry cache.
        populated_inserts = [event for event in report.events_of_kind(INSERT)
                             if event["cached_before"] >= 2]
        assert populated_inserts
        assert all(event["results_invalidated"] < event["cached_before"]
                   for event in populated_inserts)
        # A delete/update of one hot tuple may legitimately touch every
        # cached user, but across the replay each kind spares entries —
        # no kind ever degenerates into a blanket cache flush.
        for kind in MUTATION_KINDS:
            events = report.events_of_kind(kind)
            assert events, f"replay produced no {kind} events"
            assert sum(event["results_spared"] for event in events) > 0

    def test_report_as_dict_roundtrips_to_json(self, driver):
        import json
        db = driver.build_world(DBLP)
        try:
            with TopKServer(db, capacity=6) as server:
                report = driver.run(server, driver.schedule(db))
        finally:
            db.close()
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["label"] == "serving"
        assert payload["ops"] == CONFIG.requests
