"""End-to-end tests for the thread-safe Top-K serving engine."""

from __future__ import annotations

import threading

import pytest

from repro.core.preference import UserProfile
from repro.exceptions import ServingError, UnknownUserError
from repro.serving import TopKServer, fresh_top_k
from repro.sqldb.database import Database
from repro.workload.dblp import DblpConfig, Paper, generate_dblp
from repro.workload.loader import load_dataset

VENUES = ("VLDB", "SIGMOD", "PVLDB", "ICDE", "PODS", "CIKM")


def make_profile(uid: int) -> UserProfile:
    profile = UserProfile(uid=uid)
    profile.add_quantitative(f"dblp.venue = '{VENUES[uid % len(VENUES)]}'", 0.9)
    profile.add_quantitative(f"dblp.venue = '{VENUES[(uid + 2) % len(VENUES)]}'", 0.6)
    profile.add_quantitative("dblp.year >= 2008 AND dblp.year <= 2009", 0.5)
    return profile


@pytest.fixture()
def serving_db():
    db = Database(":memory:")
    load_dataset(db, generate_dblp(
        DblpConfig(n_papers=200, n_authors=60, n_venues=6, seed=7)))
    yield db
    db.close()


@pytest.fixture()
def server(serving_db):
    with TopKServer(serving_db, capacity=8) as engine:
        for uid in range(1, 5):
            engine.update_profile(uid, make_profile(uid))
        yield engine


class TestReads:
    def test_warm_request_is_zero_sql(self, server):
        cold = server.top_k(1, 5)
        warm = server.top_k(1, 5)
        assert not cold.cache_hit and cold.sql_statements > 0
        assert warm.cache_hit and warm.sql_statements == 0
        assert warm.ranking == cold.ranking

    def test_serves_match_fresh_recomputation(self, server):
        for uid in range(1, 5):
            served = server.top_k(uid, 5)
            assert list(served.ranking) == fresh_top_k(server.db, uid, 5)

    def test_unknown_user_raises(self, server):
        with pytest.raises(UnknownUserError):
            server.top_k(999, 5)

    def test_different_k_is_a_different_entry(self, server):
        server.top_k(1, 5)
        result = server.top_k(1, 3)
        assert not result.cache_hit
        assert len(result.ranking) == 3


class TestProfileUpdates:
    def test_update_invalidates_only_that_user(self, server):
        server.top_k(1, 5)
        server.top_k(2, 5)
        update = UserProfile(uid=1)
        update.add_quantitative("dblp.venue = 'PODS'", 0.8)
        report = server.update_profile(1, update)
        assert report.resident
        assert report.results_invalidated >= 1
        assert server.results.peek(1, 5) is None
        assert server.results.peek(2, 5) is not None

    def test_served_result_fresh_after_update(self, server):
        server.top_k(1, 5)
        update = UserProfile(uid=1)
        update.add_quantitative("dblp.venue = 'PODS'", 0.95)
        server.update_profile(1, update)
        served = server.top_k(1, 5)
        assert not served.cache_hit
        assert list(served.ranking) == fresh_top_k(server.db, 1, 5)

    def test_update_for_evicted_user_invalidates_cache(self, serving_db):
        with TopKServer(serving_db, capacity=1) as engine:
            engine.update_profile(1, make_profile(1))
            engine.update_profile(2, make_profile(2))
            engine.top_k(1, 5)
            engine.top_k(2, 5)  # evicts session 1; its answer stays cached
            assert engine.results.peek(1, 5) is not None
            update = UserProfile(uid=1)
            update.add_quantitative("dblp.venue = 'PODS'", 0.8)
            report = engine.update_profile(1, update)
            assert not report.resident
            assert engine.results.peek(1, 5) is None
            served = engine.top_k(1, 5)
            assert list(served.ranking) == fresh_top_k(serving_db, 1, 5)

    def test_uid_mismatch_rejected(self, server):
        with pytest.raises(ServingError):
            server.update_profile(1, make_profile(2))


class TestDataInserts:
    def test_insert_invalidates_selectively_and_stays_exact(self, server):
        for uid in range(1, 5):
            server.top_k(uid, 5)
        cached_before = len(server.results)
        # A 1996 SIGMOD paper: outside every user's year band, and SIGMOD is
        # liked only by user 1 under the venue rotation — so exactly one of
        # the four cached answers may change, and that one is *repaired* in
        # place (zero SQL) rather than dropped.
        report = server.insert_tuples(
            [Paper(pid=9001, title="New", venue="SIGMOD", year=1996)],
            paper_authors=[(9001, 1)])
        assert (report.results_invalidated + report.results_repaired
                + report.results_spared) == cached_before
        assert report.results_repaired == 1
        assert report.results_invalidated == 0
        assert report.repair_sql_statements == 0
        assert report.results_spared > 0
        # Every user's served answer equals a fresh recomputation, whether
        # their cache entry was invalidated or spared.
        for uid in range(1, 5):
            assert list(server.top_k(uid, 5).ranking) == fresh_top_k(server.db, uid, 5)

    def test_mapping_rows_with_aids_accepted(self, server):
        report = server.insert_tuples(
            [{"pid": 9002, "venue": "ICDE", "year": 2009, "title": "M",
              "aids": [1, 2]}])
        assert report.papers == 1
        assert report.joined_rows == 2
        assert server.db.scalar(
            "SELECT COUNT(*) FROM dblp_author WHERE pid = 9002") == 2

    def test_replacing_paper_invalidates_via_old_values(self, server):
        """A REPLACE that moves a paper *out* of a user's venue must not
        leave that user's cached answer serving the old membership: the
        notification carries the replaced row's pre-image, so predicates
        matching the old values invalidate too."""
        venue = VENUES[1 % len(VENUES)]  # user 1's 0.9-intensity venue
        pid = server.db.scalar(
            "SELECT dblp.pid FROM dblp JOIN dblp_author"
            " ON dblp.pid = dblp_author.pid WHERE venue = ?"
            " ORDER BY dblp.pid LIMIT 1", (venue,))
        server.top_k(1, 5)
        # Move that paper to a venue nobody prefers, far outside every band.
        server.insert_tuples(
            [Paper(pid=int(pid), title="Moved", venue="NOWHERE", year=1990)])
        served = server.top_k(1, 5)
        assert list(served.ranking) == fresh_top_k(server.db, 1, 5)

    def test_new_matching_paper_enters_ranking(self, server):
        server.top_k(1, 5)
        venue = VENUES[1 % len(VENUES)]  # user 1's 0.9-intensity venue
        report = server.insert_tuples(
            [Paper(pid=9003, title="Hot", venue=venue, year=2013)],
            paper_authors=[(9003, 1)])
        assert report.results_repaired + report.results_invalidated >= 1
        served = server.top_k(1, 200)
        assert 9003 in {pid for pid, _ in served.ranking}


class TestDataDeletes:
    def test_delete_invalidates_selectively_and_stays_exact(self, server):
        # A 1996 SIGMOD paper affects only user 1 under the venue rotation.
        server.insert_tuples(
            [Paper(pid=9100, title="Doomed", venue="SIGMOD", year=1996)],
            paper_authors=[(9100, 1)])
        for uid in range(1, 5):
            server.top_k(uid, 5)
        cached_before = len(server.results)
        report = server.delete_tuples([9100])
        assert report.papers == 1
        assert (report.results_invalidated + report.results_repaired
                + report.results_spared) == cached_before
        assert report.results_repaired == 1
        assert report.repair_sql_statements == 0
        assert report.results_spared > 0
        # The affected answer is repaired in place, not dropped — and the
        # repaired view already equals a fresh recomputation.
        repaired = server.results.peek(1, 5)
        assert repaired is not None
        assert list(repaired.ranking) == fresh_top_k(server.db, 1, 5)
        for uid in range(1, 5):
            assert list(server.top_k(uid, 5).ranking) == fresh_top_k(server.db, uid, 5)

    def test_deleted_tuple_leaves_the_ranking(self, server):
        venue = VENUES[1 % len(VENUES)]  # user 1's 0.9-intensity venue
        server.insert_tuples(
            [Paper(pid=9101, title="Transient", venue=venue, year=2013)],
            paper_authors=[(9101, 1)])
        served = server.top_k(1, 200)
        assert 9101 in {pid for pid, _ in served.ranking}
        report = server.delete_tuples([9101])
        assert report.results_repaired + report.results_invalidated >= 1
        served = server.top_k(1, 200)
        assert 9101 not in {pid for pid, _ in served.ranking}
        assert list(served.ranking) == fresh_top_k(server.db, 1, 200)

    def test_delete_of_irrelevant_paper_spares_everything(self, server):
        server.insert_tuples(
            [Paper(pid=9102, title="Nobody", venue="NOWHERE", year=1971)],
            paper_authors=[(9102, 1)])
        for uid in range(1, 5):
            server.top_k(uid, 5)
        cached_before = len(server.results)
        report = server.delete_tuples([9102])
        assert report.results_invalidated == 0
        assert report.results_spared == cached_before

    def test_unknown_pid_is_a_noop(self, server):
        server.top_k(1, 5)
        report = server.delete_tuples([999_999])
        assert report.results_invalidated == 0
        # The no-op never notifies, yet the report must still account for
        # the cached answers that survived.
        assert report.results_spared == len(server.results) == 1
        assert server.results.peek(1, 5) is not None


class TestDataUpdates:
    def test_update_invalidates_via_both_images(self, server):
        # SIGMOD → PVLDB: the pre-image matches user 1's venue preference,
        # the post-image user 2's; users 3 and 4 are provably unaffected.
        server.insert_tuples(
            [Paper(pid=9200, title="Mobile", venue="SIGMOD", year=1996)],
            paper_authors=[(9200, 1)])
        for uid in range(1, 5):
            server.top_k(uid, 5)
        report = server.update_tuples(
            [Paper(pid=9200, title="Mobile", venue="PVLDB", year=1996)])
        assert report.papers == 1
        # Pre-image matches user 1, post-image user 2 — both answers are
        # repaired in place with zero SQL; users 3 and 4 are spared without
        # even touching their entries.
        assert report.results_repaired == 2
        assert report.results_spared == 2
        assert report.repair_sql_statements == 0
        for uid in (1, 2):
            repaired = server.results.peek(uid, 5)
            assert repaired is not None
            assert list(repaired.ranking) == fresh_top_k(server.db, uid, 5)
        assert server.results.peek(3, 5) is not None
        assert server.results.peek(4, 5) is not None
        for uid in range(1, 5):
            assert list(server.top_k(uid, 5).ranking) == fresh_top_k(server.db, uid, 5)

    def test_updated_tuple_moves_between_rankings(self, server):
        first = VENUES[1 % len(VENUES)]   # user 1's hot venue
        second = VENUES[2 % len(VENUES)]  # user 2's hot venue
        server.insert_tuples(
            [Paper(pid=9201, title="Nomad", venue=first, year=2013)],
            paper_authors=[(9201, 1)])
        assert 9201 in {pid for pid, _ in server.top_k(1, 200).ranking}
        server.update_tuples(
            [Paper(pid=9201, title="Nomad", venue=second, year=2013)])
        assert 9201 not in {pid for pid, _ in server.top_k(1, 200).ranking}
        assert 9201 in {pid for pid, _ in server.top_k(2, 200).ranking}
        for uid in (1, 2):
            assert (list(server.top_k(uid, 200).ranking)
                    == fresh_top_k(server.db, uid, 200))

    def test_update_of_unknown_pid_raises(self, server):
        from repro.exceptions import WorkloadError
        with pytest.raises(WorkloadError, match="unknown papers"):
            server.update_tuples(
                [Paper(pid=888_888, title="Ghost", venue="VLDB", year=2000)])

    def test_mutation_counters_in_stats(self, server):
        server.insert_tuples(
            [Paper(pid=9202, title="Counted", venue="VLDB", year=2001)],
            paper_authors=[(9202, 1)])
        server.update_tuples(
            [Paper(pid=9202, title="Counted", venue="ICDE", year=2001)])
        server.delete_tuples([9202])
        requests = server.stats()["requests"]
        assert requests["inserts"] == 1
        assert requests["tuple_updates"] == 1
        assert requests["deletes"] == 1


class TestThreadSafety:
    def test_concurrent_reads_and_updates(self, server):
        errors = []
        expected = {uid: fresh_top_k(server.db, uid, 5) for uid in range(1, 5)}

        def hammer(uid: int) -> None:
            try:
                for _ in range(15):
                    served = server.top_k(uid, 5)
                    if list(served.ranking) != expected[uid]:
                        raise AssertionError(f"diverged for uid={uid}")
            except Exception as exc:  # pragma: no cover - failure signal
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(uid,))
                   for uid in range(1, 5) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_stats_snapshot_shape(self, server):
        stripe_before = server.stats()["stripes"]["acquisitions"]
        server.top_k(1, 5)
        server.top_k(1, 5)
        stats = server.stats()
        assert stats["requests"]["reads"] == 2
        assert stats["requests"]["read_hits"] == 1
        assert set(stats) == {"requests", "stripes", "sessions", "results",
                              "count_cache", "sql_statements_total"}
        assert stats["stripes"]["count"] == server.stripes
        # One stripe acquisition for the cold read, none for the warm hit.
        assert stats["stripes"]["acquisitions"] - stripe_before == 1
