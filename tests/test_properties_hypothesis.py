"""Property-based tests (hypothesis) for the core invariants of the model.

The generators stay inside the legal intensity domains and exercise the
algebraic properties the paper's propositions rely on, plus structural
invariants of the predicate tree and the HYPRE graph builder.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intensity import (
    combine_and,
    combine_or,
    f_and,
    f_or,
    intensity_left,
    intensity_right,
    min_preferences_to_beat,
)
from repro.core.metrics import overlap, similarity
from repro.core.predicate import (
    Condition,
    conjunction,
    disjunction,
    equals,
    parse_predicate,
)
from repro.core.preference import UserProfile
from repro.core.hypre import HypreGraphBuilder
from repro.graphstore import PREFERS

# -- strategies --------------------------------------------------------------

quantitative = st.floats(min_value=-1.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False)
positive_quant = st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False, allow_infinity=False)
qualitative = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)
attribute_names = st.sampled_from(["dblp.venue", "dblp.year", "dblp_author.aid", "price"])
simple_values = st.one_of(st.integers(min_value=-1000, max_value=3000),
                          st.sampled_from(["VLDB", "SIGMOD", "PODS", "Honda"]))


@st.composite
def conditions(draw):
    attribute = draw(attribute_names)
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    value = draw(simple_values)
    return Condition(attribute, op, value)


# -- intensity algebra --------------------------------------------------------


@given(qualitative, quantitative)
def test_left_right_preserve_order(ql, qt):
    """Eq. 4.1/4.2: derived left value >= qt >= derived right value."""
    assert intensity_left(ql, qt) >= qt - 1e-12
    assert intensity_right(ql, qt) <= qt + 1e-12


@given(qualitative, quantitative)
def test_left_right_stay_in_domain(ql, qt):
    assert -1.0 <= intensity_left(ql, qt) <= 1.0
    assert -1.0 <= intensity_right(ql, qt) <= 1.0


@given(positive_quant, positive_quant)
def test_f_and_bounds(a, b):
    """f_and is inflationary for non-negative scores and stays within [0, 1]."""
    combined = f_and(a, b)
    assert combined >= max(a, b) - 1e-12
    assert combined <= 1.0 + 1e-12


@given(positive_quant, positive_quant)
def test_f_or_bounds(a, b):
    """f_or is reserved: the result lies between the two inputs."""
    combined = f_or(a, b)
    assert min(a, b) - 1e-12 <= combined <= max(a, b) + 1e-12


@given(st.lists(positive_quant, min_size=1, max_size=8))
def test_combine_and_permutation_invariant(values):
    """Proposition 1: the AND fold does not depend on the order."""
    assert combine_and(values) == pytest.approx(
        combine_and(list(reversed(values))), abs=1e-9)


@given(st.lists(positive_quant, min_size=1, max_size=8))
def test_combine_and_dominates_every_member(values):
    assert combine_and(values) >= max(values) - 1e-12


@given(st.lists(positive_quant, min_size=1, max_size=8))
def test_combine_or_within_bounds(values):
    combined = combine_or(values)
    assert min(values) - 1e-9 <= combined <= max(values) + 1e-9


@given(st.floats(min_value=0.01, max_value=0.99),
       st.floats(min_value=0.01, max_value=0.99))
def test_proposition6_bound_is_sufficient(target, base):
    """Combining ceil(K) preferences of intensity `base` reaches `target`."""
    needed = min_preferences_to_beat(target, base)
    if math.isinf(needed):
        return
    count = max(1, math.ceil(needed))
    if count > 10_000:
        return
    assert combine_and([base] * count) >= target - 1e-9


# -- metrics -------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=30, unique=True))
def test_similarity_and_overlap_identity(ids):
    """A list compared with itself is fully similar and fully ordered."""
    assert similarity(ids, ids) == 1.0
    if ids:
        assert overlap(ids, ids) == 1.0


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=30, unique=True),
       st.lists(st.integers(min_value=51, max_value=99), max_size=30, unique=True))
def test_similarity_disjoint_is_zero(first, second):
    if first and second:
        assert similarity(first, second) == 0.0


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=20,
                unique=True))
def test_overlap_of_reversed_list_is_zero(ids):
    assert overlap(ids, list(reversed(ids))) == 0.0


# -- predicates ----------------------------------------------------------------


@given(conditions())
def test_condition_sql_roundtrips_through_parser(condition):
    """to_sql() output is always re-parseable to an equal expression."""
    assert parse_predicate(condition.to_sql()) == condition


@given(st.lists(conditions(), min_size=1, max_size=5))
def test_conjunction_roundtrips_through_parser(parts):
    expr = conjunction(parts)
    assert parse_predicate(expr.to_sql()) == expr


@given(st.lists(conditions(), min_size=1, max_size=5))
def test_disjunction_evaluation_matches_any(parts):
    expr = disjunction(parts)
    row = {"dblp.venue": "VLDB", "dblp.year": 2010, "dblp_author.aid": 5, "price": 100}
    assert expr.evaluate(row) == any(part.evaluate(row) for part in parts)


@given(st.lists(conditions(), min_size=1, max_size=5))
def test_conjunction_evaluation_matches_all(parts):
    expr = conjunction(parts)
    row = {"dblp.venue": "VLDB", "dblp.year": 2010, "dblp_author.aid": 5, "price": 100}
    assert expr.evaluate(row) == all(part.evaluate(row) for part in parts)


# -- HYPRE builder invariant ------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                          st.integers(min_value=0, max_value=5),
                          qualitative),
                min_size=1, max_size=12))
def test_builder_prefers_edges_never_violate_order(pairs):
    """After building, every PREFERS edge satisfies left intensity >= right."""
    profile = UserProfile(uid=1)
    for left, right, strength in pairs:
        if left == right:
            continue
        profile.add_qualitative(f"dblp_author.aid = {left}",
                                f"dblp_author.aid = {right}", strength)
    if not profile.qualitative:
        return
    builder = HypreGraphBuilder()
    builder.build_profile(profile)
    graph = builder.hypre.graph
    for edge in graph.edges():
        if edge.rel_type != PREFERS or edge.is_self_loop():
            continue
        left_value = graph.get_node(edge.source).get("intensity")
        right_value = graph.get_node(edge.target).get("intensity")
        assert left_value is not None and right_value is not None
        assert left_value >= right_value - 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                          st.integers(min_value=0, max_value=5),
                          qualitative),
                min_size=1, max_size=12))
def test_builder_prefers_subgraph_is_acyclic(pairs):
    """The PREFERS subgraph never contains a directed cycle."""
    profile = UserProfile(uid=1)
    for left, right, strength in pairs:
        if left == right:
            continue
        profile.add_qualitative(f"dblp_author.aid = {left}",
                                f"dblp_author.aid = {right}", strength)
    if not profile.qualitative:
        return
    builder = HypreGraphBuilder()
    builder.build_profile(profile)
    graph = builder.hypre.graph
    # topological_order raises ValueError when a PREFERS cycle exists.
    graph.topological_order(rel_types=(PREFERS,))
