"""Smoke tests: the fast example scripts must run end to end."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "car_dealership.py",
    "skyline_hotels.py",
    "quickstart.py",
    "serving_cluster.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_all_examples_present():
    expected = {"quickstart.py", "car_dealership.py", "dblp_personalization.py",
                "topk_comparison.py", "skyline_hotels.py",
                "serving_cluster.py"}
    found = {entry.name for entry in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found


def test_car_dealership_prints_expected_ranking(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "car_dealership.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "t1 > t2 > t3" in output
    assert "0.92" in output
