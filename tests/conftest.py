"""Shared fixtures for the HYPRE test suite."""

from __future__ import annotations

import pytest

from repro.algorithms.base import PreferenceQueryRunner, make_preferences
from repro.core.preference import UserProfile
from repro.experiments.context import ExperimentContext
from repro.sqldb.database import Database
from repro.workload.dblp import DblpConfig, generate_dblp
from repro.workload.loader import load_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """A deterministic ~300-paper synthetic citation network."""
    return generate_dblp(DblpConfig(n_papers=300, n_authors=120, n_venues=10, seed=7))


@pytest.fixture(scope="session")
def tiny_db(tiny_dataset):
    """The tiny dataset loaded into an in-memory SQLite database."""
    db = Database(":memory:")
    load_dataset(db, tiny_dataset)
    yield db
    db.close()


@pytest.fixture(scope="session")
def tiny_runner(tiny_db):
    """A memoising query runner over the tiny database."""
    return PreferenceQueryRunner(tiny_db)


@pytest.fixture(scope="session")
def tiny_context():
    """A fully built experiment context at the smallest scale."""
    ctx = ExperimentContext.create(scale="tiny", profile_users=15)
    yield ctx
    ctx.close()


@pytest.fixture()
def dblp_profile():
    """The running example of Section 3.3 — preferences P1..P8 for one user."""
    profile = UserProfile(uid=1)
    profile.add_quantitative("year >= 2000 AND year <= 2005", 0.3)       # P1
    profile.add_quantitative("year >= 2005 AND year <= 2009", 0.5)       # P2
    profile.add_quantitative("year >= 2009", 0.8)                        # P3
    profile.add_quantitative("venue = 'INFOCOM'", -1.0)                  # P4
    # Relative preference: recent VLDB preferred over older VLDB (P5 > P6).
    profile.add_qualitative("venue = 'VLDB' AND year >= 2010",
                            "venue = 'VLDB' AND year < 2010", 0.8)
    # Preference set: VLDB slightly preferred over papers after 2009 (P7 > P3).
    profile.add_qualitative("venue = 'VLDB'", "year >= 2009", 0.2)
    # Different levels of intensity: VLDB a bit more than SIGMOD (P7 > P8).
    profile.add_quantitative("venue = 'SIGMOD'", 0.8)                    # P8 score
    profile.add_qualitative("venue = 'VLDB'", "venue = 'SIGMOD'", 0.3)
    return profile


@pytest.fixture()
def dealership_rows():
    """Table 8 — the dealership relation used by Example 6."""
    return [
        {"id": "t1", "price": 7000, "mileage": 43489, "make": "Honda"},
        {"id": "t2", "price": 16000, "mileage": 35334, "make": "VW"},
        {"id": "t3", "price": 20000, "mileage": 49119, "make": "Honda"},
    ]


@pytest.fixture()
def dealership_preferences():
    """Example 6 — the three scored preferences over car entities."""
    return make_preferences([
        ("price >= 7000 AND price <= 16000", 0.8),
        ("mileage >= 20000 AND mileage <= 50000", 0.5),
        ("make IN ('BMW', 'Honda')", 0.2),
    ])
