"""Unit and integration tests for :mod:`repro.telemetry`.

Covers the unified metrics registry (naming scheme, instrument semantics,
snapshot adapters), request-scoped tracing (span nesting, annotations, the
bounded trace ring and slow-request capture), the JSON/Prometheus
exporters, the reversible lock instrumentation, and the stats-vocabulary
normalisation (``stats()`` and ``metrics()`` kept in sync through
:data:`repro.serving.server.STATS_ALIASES`) — on every registered storage
backend.
"""

from __future__ import annotations

import json

import pytest

from repro.backend import BACKEND_NAMES, create_backend
from repro.concurrency import TimedRLock
from repro.core.preference import UserProfile
from repro.exceptions import TelemetryError
from repro.loadgen import LoadConfig, LoadGenerator, LoadMix
from repro.loadgen.instrument import instrument_server, lock_report
from repro.serving import ReplayConfig, ReplayDriver, ShardedTopKServer, TopKServer
from repro.serving.server import STATS_ALIASES
from repro.telemetry import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
    Span,
    Telemetry,
    TraceBuffer,
    annotate,
    current_span,
    instrument_locks,
    json_snapshot,
    prometheus_text,
    sanitize_component,
    span,
    validate_metric_name,
    validate_snapshot,
)
from repro.workload.dblp import DblpConfig, Paper, generate_dblp
from repro.workload.loader import load_dataset

VENUES = ("VLDB", "SIGMOD", "PVLDB", "ICDE", "PODS", "CIKM")


def _depth(record):
    """Nesting depth of one as_dict()-rendered span tree."""
    return 1 + max((_depth(child) for child in record["children"]), default=0)


def make_profile(uid: int) -> UserProfile:
    """A two-preference profile, so the pair index issues count queries."""
    profile = UserProfile(uid=uid)
    profile.add_quantitative(f"dblp.venue = '{VENUES[uid % len(VENUES)]}'", 0.9)
    profile.add_quantitative("dblp.year >= 2008 AND dblp.year <= 2009", 0.5)
    return profile


@pytest.fixture(params=sorted(BACKEND_NAMES))
def serving_db(request):
    db = create_backend(request.param)
    load_dataset(db, generate_dblp(
        DblpConfig(n_papers=200, n_authors=60, n_venues=6, seed=7)))
    yield db
    db.close()


@pytest.fixture()
def server(serving_db):
    with TopKServer(serving_db, capacity=8) as engine:
        for uid in range(1, 5):
            engine.update_profile(uid, make_profile(uid))
        yield engine


# -- naming and instruments ---------------------------------------------------


class TestNaming:
    def test_valid_names_pass(self):
        for name in ("serving.server.reads", "index.count_cache.hits",
                     "concurrency.lock.shard0_server.wait_seconds",
                     "a.b.c.d"):
            assert validate_metric_name(name) == name

    @pytest.mark.parametrize("name", [
        "reads", "serving.reads", "Serving.server.reads",
        "serving..reads", "serving.server.reads-total", ""])
    def test_invalid_names_raise(self, name):
        with pytest.raises(TelemetryError):
            validate_metric_name(name)

    def test_sanitize_component(self):
        assert sanitize_component("shard0-server") == "shard0_server"
        assert sanitize_component("Memory Backend!") == "memory_backend"
        assert sanitize_component("---") == "unnamed"


class TestInstruments:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("layer.thing.events")
        counter.inc()
        counter.inc(2)
        assert registry.counter("layer.thing.events") is counter
        assert counter.value == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("layer.thing.events").inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("layer.thing.events")
        with pytest.raises(TelemetryError):
            registry.gauge("layer.thing.events")

    def test_callback_gauge_reads_live(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge("layer.thing.level", fn=lambda: box["value"])
        box["value"] = 7
        assert registry.snapshot()["layer.thing.level"] == 7

    def test_settable_gauge_rejects_becoming_callback(self):
        registry = MetricsRegistry()
        registry.gauge("layer.thing.level").set(3)
        with pytest.raises(TelemetryError):
            registry.gauge("layer.thing.level", fn=lambda: 0)

    def test_histogram_snapshots_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("layer.thing.latency")
        histogram.record(0.002)
        histogram.record_us(1500)
        summary = registry.snapshot()["layer.thing.latency"]
        assert summary["count"] == 2
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]


class TestAdapters:
    def test_adapters_rereads_and_replaces(self):
        registry = MetricsRegistry()
        source = {"layer.thing.events": 1}
        registry.register_adapter("src", lambda: source)
        assert registry.snapshot()["layer.thing.events"] == 1
        source["layer.thing.events"] = 5
        assert registry.snapshot()["layer.thing.events"] == 5
        registry.register_adapter("src", lambda: {"layer.thing.events": 9})
        assert registry.snapshot()["layer.thing.events"] == 9
        assert registry.adapter_names() == ["src"]

    def test_adapter_names_are_validated(self):
        registry = MetricsRegistry()
        registry.register_adapter("bad", lambda: {"not-a-name": 1})
        with pytest.raises(TelemetryError):
            registry.snapshot()

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register_adapter("src", lambda: {"layer.thing.events": 1})
        assert registry.unregister_adapter("src")
        assert not registry.unregister_adapter("src")
        assert registry.snapshot() == {}


# -- tracing ------------------------------------------------------------------


class TestTracing:
    def test_span_is_noop_without_active_trace(self):
        assert current_span() is None
        with span("anything") as untraced:
            untraced.annotate("key", "value")  # must not explode
        annotate("key", "value")
        assert current_span() is None

    def test_root_span_sinks_nested_tree(self):
        buffer = TraceBuffer()
        with Span("root", sink=buffer) as root:
            root.annotate("uid", 1)
            with span("middle"):
                with span("leaf") as leaf:
                    leaf.annotate("rows", 3)
        assert len(buffer) == 1
        record = buffer.snapshot()[0]
        assert record.name == "root"
        assert record.annotation("uid") == 1
        assert record.depth() == 3
        assert record.find("leaf").annotation("rows") == 3
        assert [named.name for named in record.walk()] == [
            "root", "middle", "leaf"]

    def test_trace_buffer_is_bounded_and_captures_slow(self):
        buffer = TraceBuffer(capacity=4, slow_capacity=2, slow_threshold=0.5)
        for index in range(10):
            with Span(f"request_{index}", sink=buffer):
                pass
        stats = buffer.stats()
        assert stats["recorded"] == 10
        assert stats["retained"] == 4
        assert stats["slow_recorded"] == 0
        # A span that measures as slow lands in the slow ring too.
        slow = Span("slow_request", sink=buffer)
        with slow:
            slow._start -= 1.0  # pretend a second elapsed
        assert buffer.stats()["slow_recorded"] == 1
        assert buffer.slow()[0].name == "slow_request"
        assert buffer.slow()[0].seconds >= 0.5


# -- exporters ----------------------------------------------------------------


class TestExporters:
    def test_json_snapshot_shape_and_validation(self):
        buffer = TraceBuffer()
        with Span("request", sink=buffer):
            pass
        document = json_snapshot({"layer.thing.events": 2}, buffer)
        assert document["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert document["metrics"] == {"layer.thing.events": 2}
        assert document["traces"]["buffer"]["recorded"] == 1
        assert document["traces"]["recent"][0]["name"] == "request"
        assert validate_snapshot(document) == document
        json.dumps(document)  # must be JSON-serialisable end to end

    def test_validate_snapshot_rejects_bad_documents(self):
        with pytest.raises(TelemetryError):
            validate_snapshot({"metrics": {}})
        with pytest.raises(TelemetryError):
            validate_snapshot({"schema_version": 999, "metrics": {},
                               "traces": {}})

    def test_prometheus_text(self):
        text = prometheus_text({
            "serving.server.reads": 4,
            "serving.server.read_latency": {"count": 2, "p95_ms": 1.5},
            "serving.server.notes": "not-a-number",
        })
        assert "repro_serving_server_reads 4\n" in text
        assert "repro_serving_server_read_latency_count 2" in text
        assert "repro_serving_server_read_latency_p95_ms 1.5" in text
        assert "notes" not in text
        assert text.endswith("\n")


# -- the serving stack under telemetry ---------------------------------------


class TestServerTelemetry:
    def test_snapshot_covers_every_layer(self, server):
        telemetry = Telemetry()
        telemetry.observe(server)
        with telemetry.instrument_locks(server):
            server.top_k(1, 5)
            snapshot = telemetry.snapshot()
            layers = {name.split(".", 1)[0] for name in snapshot}
        assert {"serving", "index", "backend", "concurrency",
                "telemetry"} <= layers
        backend = server.db.backend_name
        assert snapshot[f"backend.{backend}.statements_executed"] > 0
        assert snapshot["serving.server.reads"] == 1
        assert snapshot["serving.server.read_latency"]["count"] == 1

    def test_cold_read_traces_server_to_cache_to_backend(self, server):
        telemetry = Telemetry()
        telemetry.observe(server)
        server.top_k(1, 5)
        record = telemetry.traces.snapshot()[-1]
        assert record.name == "server.top_k"
        assert record.annotation("cache_hit") is False
        assert record.depth() >= 3
        assert record.find("peps.top_k") is not None
        assert record.find("count_cache.backend_query") is not None
        assert record.sql_statements > 0

    def test_warm_read_is_zero_sql_in_the_trace(self, server):
        telemetry = Telemetry()
        telemetry.observe(server)
        server.top_k(1, 5)
        server.top_k(1, 5)
        warm = telemetry.traces.snapshot()[-1]
        assert warm.annotation("cache_hit") is True
        assert warm.sql_statements == 0

    def test_slow_threshold_captures_request(self, serving_db):
        telemetry = Telemetry(slow_threshold=0.0)  # everything is "slow"
        with TopKServer(serving_db, capacity=8) as engine:
            telemetry.observe(engine)
            engine.update_profile(1, make_profile(1))
            engine.top_k(1, 5)
        slow = telemetry.traces.slow()
        assert [record.name for record in slow] == [
            "server.update_profile", "server.top_k"]

    def test_mutations_are_traced(self, server):
        telemetry = Telemetry()
        telemetry.observe(server)
        server.insert_tuples(
            [Paper(pid=90_000, title="telemetry paper", venue="VLDB",
                   year=2012)],
            paper_authors=[(90_000, 1)])
        record = telemetry.traces.snapshot()[-1]
        assert record.name == "server.insert_tuples"
        assert record.annotation("papers") == 1
        assert record.find("server.on_data_mutation") is not None


class TestClusterTelemetry:
    def test_fanout_trace_nests_every_shard(self, serving_db):
        telemetry = Telemetry()
        with ShardedTopKServer(serving_db, shards=3, capacity=8,
                               parallel_fanout=True) as cluster:
            telemetry.observe(cluster)
            for uid in range(1, 5):
                cluster.update_profile(uid, make_profile(uid))
            cluster.insert_tuples(
                [Paper(pid=90_001, title="fanout paper", venue="VLDB",
                       year=2012)],
                paper_authors=[(90_001, 1)])
            record = telemetry.traces.snapshot()[-1]
            assert record.name == "cluster.tuples_inserted"
            mutations = [child for child in record.children
                         if child.name == "server.on_data_mutation"]
            assert len(mutations) == cluster.shards

    def test_read_nests_shard_front_door(self, serving_db):
        telemetry = Telemetry()
        with ShardedTopKServer(serving_db, shards=2, capacity=8) as cluster:
            telemetry.observe(cluster)
            cluster.update_profile(1, make_profile(1))
            cluster.top_k(1, 5)
            record = telemetry.traces.snapshot()[-1]
            assert record.name == "cluster.top_k"
            assert record.find("server.top_k") is not None
            assert record.depth() >= 4


# -- satellite: reversible lock instrumentation -------------------------------


class TestLockInstrumentation:
    def test_roundtrip_restores_every_original(self, server):
        originals = (server._stripes, server._gate, server.sessions._lock,
                     server.sessions.count_cache._lock,
                     server.sessions.count_cache._cond,
                     server.results._lock)
        handle = instrument_locks(server)
        assert handle.active
        assert all(isinstance(lock.stats(), dict) for lock in handle.locks)
        # Every per-user stripe is wrapped individually, around its
        # *original* inner lock (a thread mid-acquire keeps working).
        assert all(isinstance(stripe, TimedRLock)
                   for stripe in server._stripes)
        assert tuple(stripe._inner for stripe in server._stripes) \
            == originals[0]
        names = {lock.stats()["name"] for lock in handle.locks}
        assert {f"stripe{index}" for index in
                range(len(server._stripes))} <= names
        # The writer gate accounts itself and is tracked un-swapped.
        assert server._gate is originals[1]
        # The count cache's condition must ride the wrapper lock while
        # instrumented, or in-flight coalescing would deadlock.
        assert (server.sessions.count_cache._cond._lock
                is server.sessions.count_cache._lock)
        server.top_k(1, 5)
        handle.uninstrument()
        assert not handle.active
        restored = (server._stripes, server._gate, server.sessions._lock,
                    server.sessions.count_cache._lock,
                    server.sessions.count_cache._cond,
                    server.results._lock)
        assert restored == originals
        server.top_k(2, 5)  # engine still serves after restore

    def test_reinstrumenting_returns_active_handle(self, server):
        handle = instrument_locks(server)
        assert instrument_locks(server) is handle
        handle.uninstrument()
        handle.uninstrument()  # idempotent
        fresh = instrument_locks(server)
        assert fresh is not handle
        fresh.uninstrument()

    def test_registry_adapter_lifecycle(self, server):
        registry = MetricsRegistry()
        with instrument_locks(server, registry=registry):
            server.top_k(1, 5)
            snapshot = registry.snapshot()
            assert snapshot["concurrency.lock.server.acquisitions"] > 0
        assert "concurrency" not in {name.split(".", 1)[0]
                                     for name in registry.snapshot()}

    def test_cluster_locks_cover_every_shard(self, serving_db):
        with ShardedTopKServer(serving_db, shards=2, capacity=8) as cluster:
            with instrument_locks(cluster) as handle:
                names = {lock.stats()["name"] for lock in handle.locks}
                assert "cluster-broadcast" in names
                assert {"shard0-server", "shard1-server"} <= names

    def test_legacy_shim_still_reports(self, server):
        locks = instrument_server(server)
        server.top_k(1, 5)
        records = lock_report(locks)
        assert records and all("wait_seconds" in record
                               for record in records)
        instrument_locks(server).uninstrument()


# -- satellite: stats vocabulary normalisation --------------------------------


class TestStatsAliases:
    def test_server_stats_and_metrics_agree(self, server):
        server.top_k(1, 5)
        server.top_k(1, 5)
        metrics = server.metrics()
        stats = server.stats()
        for unified, (section, key) in STATS_ALIASES.items():
            assert stats[section][key] == metrics[unified], unified
        backend = server.db.backend_name
        assert (stats["sql_statements_total"]
                == metrics[f"backend.{backend}.statements_executed"])

    def test_cluster_stats_and_metrics_agree(self, serving_db):
        with ShardedTopKServer(serving_db, shards=2, capacity=8) as cluster:
            cluster.update_profile(1, make_profile(1))
            cluster.top_k(1, 5)
            metrics = cluster.metrics()
            stats = cluster.stats()
            for unified, (section, key) in STATS_ALIASES.items():
                assert stats[section][key] == metrics[unified], unified
            assert stats["shards"] == metrics["serving.cluster.shards"]
            assert len(stats["per_shard"]) == cluster.shards

    def test_every_alias_is_a_unified_name(self):
        for unified in STATS_ALIASES:
            assert validate_metric_name(unified)


# -- the load harness under telemetry -----------------------------------------


class TestLoadgenTelemetry:
    def test_load_run_report_carries_snapshot(self, server):
        telemetry = Telemetry()
        config = LoadConfig(threads=2, duration_seconds=0.3,
                            mix=LoadMix(k=5), audit_interval=0.2)
        report = LoadGenerator(config).run(server, telemetry=telemetry)
        assert report.clean
        document = report.telemetry
        assert validate_snapshot(document)
        layers = {name.split(".", 1)[0] for name in document["metrics"]}
        assert {"serving", "index", "backend", "concurrency", "loadgen",
                "telemetry"} <= layers
        assert document["metrics"]["loadgen.audit.mismatches"] == 0
        # The runner restored the locks after assembling the report.
        assert not any(isinstance(stripe, TimedRLock)
                       for stripe in server._stripes)
        assert "locks" not in telemetry.registry.adapter_names()

    def test_load_run_without_telemetry_is_unchanged(self, server):
        config = LoadConfig(threads=1, duration_seconds=0.2,
                            mix=LoadMix(k=5), audit_interval=None)
        report = LoadGenerator(config).run(server)
        assert report.telemetry == {}
        assert report.as_dict()["telemetry"] == {}


# -- the whole stack end to end -----------------------------------------------


class TestEndToEnd:
    def test_replay_snapshot_covers_four_layers(self, serving_db):
        driver = ReplayDriver(ReplayConfig(users=8, requests=40, k=5, seed=3))
        telemetry = Telemetry(slow_threshold=0.0)
        with TopKServer(serving_db, capacity=8) as engine:
            telemetry.observe(engine)
            with telemetry.instrument_locks(engine):
                driver.prepare(serving_db)
                driver.run(engine, driver.schedule(serving_db))
                document = telemetry.json_snapshot()
        layers = {name.split(".", 1)[0] for name in document["metrics"]}
        assert {"serving", "index", "backend", "concurrency"} <= layers
        slow = document["traces"]["slow"]
        reads = [record for record in slow
                 if record["name"] == "server.top_k"
                 and not record["annotations"].get("cache_hit")]
        assert reads, "expected at least one captured cold read"
        deepest = max(_depth(record) for record in reads)
        assert deepest >= 3
